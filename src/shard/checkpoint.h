// Versioned shard checkpoints (Daly-style periodic checkpointing).
//
// A checkpoint is one JSON document:
//
//   {
//     "format": "crowdtruth_shard_checkpoint", "version": 1,
//     "shard_count": N, "shard_index": -1 | i,
//     "next_sequence": S,
//     "method": "ZC", "kind": "categorical", "num_choices": 2,
//     "shards": [ <engine snapshot>, ... ]
//   }
//
// `shard_index` is -1 for a coordinator document carrying every shard's
// engine snapshot, or a shard index for a worker-process document carrying
// only its own. `next_sequence` is the count of input records consumed when
// the checkpoint was taken — the global answer-log sequence number replay
// resumes from. Because record routing is deterministic (data::ShardOfTask
// over string ids), a restart needs nothing else: restore the engines, re-
// derive the routing state from the input prefix, continue at S.
//
// Unknown versions are a typed kValidationError so restart logic can tell
// "written by a newer build" apart from corruption.
#ifndef CROWDTRUTH_SHARD_CHECKPOINT_H_
#define CROWDTRUTH_SHARD_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/json_writer.h"
#include "util/status.h"

namespace crowdtruth::shard {

inline constexpr char kCheckpointFormat[] = "crowdtruth_shard_checkpoint";
inline constexpr int kCheckpointVersion = 1;

struct CheckpointMeta {
  int shard_count = 1;
  // -1: coordinator document (every shard); >= 0: that one shard.
  int shard_index = -1;
  // Input records consumed when the checkpoint was taken == the global
  // sequence number replay resumes from.
  int64_t next_sequence = 0;
  std::string method;
  std::string kind;  // "categorical" | "numeric"
  int num_choices = 0;  // 0 for numeric
};

// Assembles a checkpoint document from its parts. `engine_snapshots` holds
// one StreamEngine::Snapshot() per covered shard (shard order for a
// coordinator document, exactly one for a worker document).
util::JsonValue MakeCheckpointDoc(
    const CheckpointMeta& meta,
    std::vector<util::JsonValue> engine_snapshots);

// Validates the envelope and extracts the meta plus a pointer to the
// "shards" array (owned by `doc`). Unknown versions → kValidationError.
util::Status ParseCheckpointDoc(const util::JsonValue& doc,
                                CheckpointMeta* meta,
                                const util::JsonValue** shards);

// "<prefix>_<next_sequence zero-padded to 12>.json" — zero padding keeps
// lexicographic and numeric order identical, so `ls` shows checkpoints in
// replay order.
std::string CheckpointFileName(const std::string& prefix,
                               int64_t next_sequence);

// Durable write: serialize to "<path>.tmp", flush, rename over `path`. A
// crash mid-write leaves at most a stale .tmp, never a torn checkpoint.
util::Status WriteJsonFileAtomic(const std::string& path,
                                 const util::JsonValue& doc);

// Reads and parses one JSON document.
util::Status ReadJsonFile(const std::string& path, util::JsonValue* out);

// Scans `dir` for "<prefix>_<seq>.json" files and returns the path and
// sequence of the largest-sequence one. NotFound when the directory holds
// no matching checkpoint.
util::Status FindLatestCheckpoint(const std::string& dir,
                                  const std::string& prefix,
                                  std::string* path, int64_t* next_sequence);

}  // namespace crowdtruth::shard

#endif  // CROWDTRUTH_SHARD_CHECKPOINT_H_
