#include "shard/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace crowdtruth::shard {

using util::JsonValue;
using util::Status;

namespace {

Status ReadString(const JsonValue& doc, const char* key, std::string* out) {
  const JsonValue* value = doc.Find(key);
  if (value == nullptr || value->kind() != JsonValue::Kind::kString) {
    return Status::InvalidArgument(std::string("checkpoint field \"") + key +
                                   "\" missing or not a string");
  }
  *out = value->string();
  return Status::Ok();
}

Status ReadInt64(const JsonValue& doc, const char* key, int64_t* out) {
  const JsonValue* value = doc.Find(key);
  if (value == nullptr || value->kind() != JsonValue::Kind::kNumber) {
    return Status::InvalidArgument(std::string("checkpoint field \"") + key +
                                   "\" missing or not a number");
  }
  *out = static_cast<int64_t>(value->number());
  return Status::Ok();
}

}  // namespace

JsonValue MakeCheckpointDoc(const CheckpointMeta& meta,
                            std::vector<JsonValue> engine_snapshots) {
  JsonValue root = JsonValue::Object();
  root.Set("format", kCheckpointFormat);
  root.Set("version", kCheckpointVersion);
  root.Set("shard_count", meta.shard_count);
  root.Set("shard_index", meta.shard_index);
  root.Set("next_sequence", meta.next_sequence);
  root.Set("method", meta.method);
  root.Set("kind", meta.kind);
  root.Set("num_choices", meta.num_choices);
  JsonValue shards = JsonValue::Array();
  for (JsonValue& snapshot : engine_snapshots) {
    shards.Append(std::move(snapshot));
  }
  root.Set("shards", std::move(shards));
  return root;
}

Status ParseCheckpointDoc(const JsonValue& doc, CheckpointMeta* meta,
                          const JsonValue** shards) {
  const JsonValue* format = doc.Find("format");
  if (format == nullptr || format->kind() != JsonValue::Kind::kString ||
      format->string() != kCheckpointFormat) {
    return Status::InvalidArgument(
        "not a crowdtruth_shard_checkpoint document");
  }
  int64_t version = 0;
  Status status = ReadInt64(doc, "version", &version);
  if (!status.ok()) return status;
  if (version != kCheckpointVersion) {
    return Status::ValidationError("unsupported shard checkpoint version " +
                                   std::to_string(version));
  }
  int64_t shard_count = 0;
  int64_t shard_index = 0;
  int64_t num_choices = 0;
  status = ReadInt64(doc, "shard_count", &shard_count);
  if (!status.ok()) return status;
  status = ReadInt64(doc, "shard_index", &shard_index);
  if (!status.ok()) return status;
  status = ReadInt64(doc, "next_sequence", &meta->next_sequence);
  if (!status.ok()) return status;
  status = ReadString(doc, "method", &meta->method);
  if (!status.ok()) return status;
  status = ReadString(doc, "kind", &meta->kind);
  if (!status.ok()) return status;
  status = ReadInt64(doc, "num_choices", &num_choices);
  if (!status.ok()) return status;
  if (shard_count < 1 || shard_index < -1 || shard_index >= shard_count ||
      meta->next_sequence < 0) {
    return Status::InvalidArgument("checkpoint meta out of range");
  }
  meta->shard_count = static_cast<int>(shard_count);
  meta->shard_index = static_cast<int>(shard_index);
  meta->num_choices = static_cast<int>(num_choices);
  const JsonValue* array = doc.Find("shards");
  if (array == nullptr || array->kind() != JsonValue::Kind::kArray) {
    return Status::InvalidArgument(
        "checkpoint field \"shards\" missing or not an array");
  }
  const size_t expected = meta->shard_index < 0
                              ? static_cast<size_t>(meta->shard_count)
                              : 1;
  if (array->items().size() != expected) {
    return Status::InvalidArgument(
        "checkpoint carries " + std::to_string(array->items().size()) +
        " shard snapshots, expected " + std::to_string(expected));
  }
  *shards = array;
  return Status::Ok();
}

std::string CheckpointFileName(const std::string& prefix,
                               int64_t next_sequence) {
  std::string digits = std::to_string(next_sequence);
  if (digits.size() < 12) digits.insert(0, 12 - digits.size(), '0');
  return prefix + "_" + digits + ".json";
}

Status WriteJsonFileAtomic(const std::string& path, const JsonValue& doc) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::out | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp + " for writing");
    out << doc.Dump(/*indent=*/1) << '\n';
    out.flush();
    if (!out) return Status::IoError("write failed on " + tmp);
  }
  std::error_code error;
  std::filesystem::rename(tmp, path, error);
  if (error) {
    return Status::IoError("cannot rename " + tmp + " to " + path + ": " +
                           error.message());
  }
  return Status::Ok();
}

Status ReadJsonFile(const std::string& path, JsonValue* out) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed on " + path);
  return util::ParseJson(buffer.str(), out);
}

Status FindLatestCheckpoint(const std::string& dir,
                            const std::string& prefix, std::string* path,
                            int64_t* next_sequence) {
  std::error_code error;
  std::filesystem::directory_iterator it(dir, error);
  if (error) {
    return Status::NotFound("cannot list " + dir + ": " + error.message());
  }
  const std::string head = prefix + "_";
  const std::string tail = ".json";
  bool found = false;
  int64_t best = -1;
  std::string best_path;
  for (const std::filesystem::directory_entry& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= head.size() + tail.size() ||
        name.compare(0, head.size(), head) != 0 ||
        name.compare(name.size() - tail.size(), tail.size(), tail) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(head.size(), name.size() - head.size() - tail.size());
    char* end = nullptr;
    errno = 0;
    const long long seq = std::strtoll(digits.c_str(), &end, 10);
    if (end == digits.c_str() || *end != '\0' || errno == ERANGE || seq < 0) {
      continue;
    }
    if (!found || seq > best) {
      found = true;
      best = seq;
      best_path = entry.path().string();
    }
  }
  if (!found) {
    return Status::NotFound("no \"" + prefix + "_*\" checkpoint in " + dir);
  }
  *path = best_path;
  *next_sequence = best;
  return Status::Ok();
}

}  // namespace crowdtruth::shard
