#include "shard/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "scenario/buggify.h"

namespace crowdtruth::shard {

using util::JsonValue;
using util::Status;

namespace {

Status ReadString(const JsonValue& doc, const char* key, std::string* out) {
  const JsonValue* value = doc.Find(key);
  if (value == nullptr || value->kind() != JsonValue::Kind::kString) {
    return Status::InvalidArgument(std::string("checkpoint field \"") + key +
                                   "\" missing or not a string");
  }
  *out = value->string();
  return Status::Ok();
}

Status ReadInt64(const JsonValue& doc, const char* key, int64_t* out) {
  const JsonValue* value = doc.Find(key);
  if (value == nullptr || value->kind() != JsonValue::Kind::kNumber) {
    return Status::InvalidArgument(std::string("checkpoint field \"") + key +
                                   "\" missing or not a number");
  }
  *out = static_cast<int64_t>(value->number());
  return Status::Ok();
}

// Writes `text` to `path` and fsyncs it before closing, so the bytes are
// durable before any rename publishes the file. Unlinks the file on
// failure — a half-written temp must not survive to confuse a later
// FindLatestCheckpoint or retry.
Status WriteDurableFile(const std::string& path, const std::string& text) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + " for writing: " +
                           std::strerror(errno));
  }
  size_t written = 0;
  while (written < text.size()) {
    const ssize_t n =
        ::write(fd, text.data() + written, text.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string detail = std::strerror(errno);
      ::close(fd);
      ::unlink(path.c_str());
      return Status::IoError("write failed on " + path + ": " + detail);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    ::unlink(path.c_str());
    return Status::IoError("fsync failed on " + path + ": " + detail);
  }
  if (::close(fd) != 0) {
    ::unlink(path.c_str());
    return Status::IoError("close failed on " + path + ": " +
                           std::strerror(errno));
  }
  return Status::Ok();
}

// Fsyncs a directory so a rename inside it survives a crash. An empty
// `dir` (plain filename in the working directory) syncs ".".
Status FsyncDir(const std::string& dir) {
  const std::string target = dir.empty() ? "." : dir;
  const int fd = ::open(target.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("cannot open directory " + target + ": " +
                           std::strerror(errno));
  }
  Status status = Status::Ok();
  if (::fsync(fd) != 0) {
    status = Status::IoError("fsync failed on directory " + target + ": " +
                             std::strerror(errno));
  }
  ::close(fd);
  return status;
}

}  // namespace

JsonValue MakeCheckpointDoc(const CheckpointMeta& meta,
                            std::vector<JsonValue> engine_snapshots) {
  JsonValue root = JsonValue::Object();
  root.Set("format", kCheckpointFormat);
  root.Set("version", kCheckpointVersion);
  root.Set("shard_count", meta.shard_count);
  root.Set("shard_index", meta.shard_index);
  root.Set("next_sequence", meta.next_sequence);
  root.Set("method", meta.method);
  root.Set("kind", meta.kind);
  root.Set("num_choices", meta.num_choices);
  JsonValue shards = JsonValue::Array();
  for (JsonValue& snapshot : engine_snapshots) {
    shards.Append(std::move(snapshot));
  }
  root.Set("shards", std::move(shards));
  return root;
}

Status ParseCheckpointDoc(const JsonValue& doc, CheckpointMeta* meta,
                          const JsonValue** shards) {
  const JsonValue* format = doc.Find("format");
  if (format == nullptr || format->kind() != JsonValue::Kind::kString ||
      format->string() != kCheckpointFormat) {
    return Status::InvalidArgument(
        "not a crowdtruth_shard_checkpoint document");
  }
  int64_t version = 0;
  Status status = ReadInt64(doc, "version", &version);
  if (!status.ok()) return status;
  if (version != kCheckpointVersion) {
    return Status::ValidationError("unsupported shard checkpoint version " +
                                   std::to_string(version));
  }
  int64_t shard_count = 0;
  int64_t shard_index = 0;
  int64_t num_choices = 0;
  status = ReadInt64(doc, "shard_count", &shard_count);
  if (!status.ok()) return status;
  status = ReadInt64(doc, "shard_index", &shard_index);
  if (!status.ok()) return status;
  status = ReadInt64(doc, "next_sequence", &meta->next_sequence);
  if (!status.ok()) return status;
  status = ReadString(doc, "method", &meta->method);
  if (!status.ok()) return status;
  status = ReadString(doc, "kind", &meta->kind);
  if (!status.ok()) return status;
  status = ReadInt64(doc, "num_choices", &num_choices);
  if (!status.ok()) return status;
  if (shard_count < 1 || shard_index < -1 || shard_index >= shard_count ||
      meta->next_sequence < 0) {
    return Status::InvalidArgument("checkpoint meta out of range");
  }
  meta->shard_count = static_cast<int>(shard_count);
  meta->shard_index = static_cast<int>(shard_index);
  meta->num_choices = static_cast<int>(num_choices);
  const JsonValue* array = doc.Find("shards");
  if (array == nullptr || array->kind() != JsonValue::Kind::kArray) {
    return Status::InvalidArgument(
        "checkpoint field \"shards\" missing or not an array");
  }
  const size_t expected = meta->shard_index < 0
                              ? static_cast<size_t>(meta->shard_count)
                              : 1;
  if (array->items().size() != expected) {
    return Status::InvalidArgument(
        "checkpoint carries " + std::to_string(array->items().size()) +
        " shard snapshots, expected " + std::to_string(expected));
  }
  *shards = array;
  return Status::Ok();
}

std::string CheckpointFileName(const std::string& prefix,
                               int64_t next_sequence) {
  std::string digits = std::to_string(next_sequence);
  if (digits.size() < 12) digits.insert(0, 12 - digits.size(), '0');
  return prefix + "_" + digits + ".json";
}

Status WriteJsonFileAtomic(const std::string& path, const JsonValue& doc) {
  // write tmp + fsync tmp + rename + fsync parent: the classic durable
  // publish. Flushing alone only hands the bytes to the kernel — before
  // this fix a "committed" checkpoint (and the rename itself) could vanish
  // on power loss, and a failed rename leaked the stale `.tmp`.
  const std::string tmp = path + ".tmp";
  const std::string text = doc.Dump(/*indent=*/1) + "\n";
  Status status = WriteDurableFile(tmp, text);
  if (!status.ok()) return status;
  // Buggify "checkpoint_write": fail the publish once. Recovery — unlink
  // the stale tmp, rewrite, retry — is exactly the real failure path, and
  // the retry succeeds, so checkpoint cadence is unchanged.
  const bool simulate_failure = CROWDTRUTH_BUGGIFY("checkpoint_write");
  for (int attempt = 0;; ++attempt) {
    std::error_code error;
    if (simulate_failure && attempt == 0) {
      error = std::make_error_code(std::errc::io_error);
    } else {
      std::filesystem::rename(tmp, path, error);
    }
    if (!error) break;
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    if (attempt > 0 || !simulate_failure) {
      return Status::IoError("cannot rename " + tmp + " to " + path + ": " +
                             error.message());
    }
    status = WriteDurableFile(tmp, text);
    if (!status.ok()) return status;
  }
  return FsyncDir(std::filesystem::path(path).parent_path().string());
}

Status ReadJsonFile(const std::string& path, JsonValue* out) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed on " + path);
  return util::ParseJson(buffer.str(), out);
}

Status FindLatestCheckpoint(const std::string& dir,
                            const std::string& prefix, std::string* path,
                            int64_t* next_sequence) {
  std::error_code error;
  std::filesystem::directory_iterator it(dir, error);
  if (error) {
    return Status::NotFound("cannot list " + dir + ": " + error.message());
  }
  const std::string head = prefix + "_";
  const std::string tail = ".json";
  bool found = false;
  int64_t best = -1;
  std::string best_path;
  int64_t older = -1;
  std::string older_path;
  for (const std::filesystem::directory_entry& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= head.size() + tail.size() ||
        name.compare(0, head.size(), head) != 0 ||
        name.compare(name.size() - tail.size(), tail.size(), tail) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(head.size(), name.size() - head.size() - tail.size());
    char* end = nullptr;
    errno = 0;
    const long long seq = std::strtoll(digits.c_str(), &end, 10);
    if (end == digits.c_str() || *end != '\0' || errno == ERANGE || seq < 0) {
      continue;
    }
    if (!found || seq > best) {
      if (found) {
        older = best;
        older_path = best_path;
      }
      found = true;
      best = seq;
      best_path = entry.path().string();
    } else if (seq > older && seq < best) {
      older = seq;
      older_path = entry.path().string();
    }
  }
  if (!found) {
    return Status::NotFound("no \"" + prefix + "_*\" checkpoint in " + dir);
  }
  // Buggify "snapshot_restore": pretend the newest checkpoint is torn and
  // fall back to the next-older one — the replay-from-behind recovery
  // path. Visited only when a fallback exists, so restore still succeeds
  // and log replay makes up the difference.
  if (older >= 0 && CROWDTRUTH_BUGGIFY("snapshot_restore")) {
    best = older;
    best_path = older_path;
  }
  *path = best_path;
  *next_sequence = best;
  return Status::Ok();
}

}  // namespace crowdtruth::shard
