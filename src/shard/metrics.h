// Per-shard observability (obs/metrics.h families, label {shard}).
//
// Registered lazily against the process-wide registry by whoever runs a
// shard — the in-process coordinator (shard/coordinator.h) and the worker-
// process CLI (tools/crowdtruth_shard.cc) share these families, so a
// scrape of either deployment shape reads the same series:
//
//   crowdtruth_shard_barrier_wait_seconds   (histogram) time a shard spent
//       waiting at a barrier for its peers (poll time for worker
//       processes; barrier span minus own local work in-process);
//   crowdtruth_shard_summary_bytes_total    (counter) serialized worker-
//       summary bytes this shard contributed to all-reduces;
//   crowdtruth_shard_checkpoint_seconds     (histogram) wall-clock cost of
//       writing one checkpoint;
//   crowdtruth_shard_checkpoints_total      (counter) checkpoints written;
//   crowdtruth_shard_barriers_total         (counter) barriers completed;
//   crowdtruth_shard_restarts_total         (counter) restores from a
//       checkpoint.
#ifndef CROWDTRUTH_SHARD_METRICS_H_
#define CROWDTRUTH_SHARD_METRICS_H_

#include <string>

#include "obs/metrics.h"

namespace crowdtruth::shard {

struct ShardMetricSet {
  obs::Histogram* barrier_wait = nullptr;
  obs::Counter* summary_bytes = nullptr;
  obs::Histogram* checkpoint_seconds = nullptr;
  obs::Counter* checkpoints = nullptr;
  obs::Counter* barriers = nullptr;
  obs::Counter* restarts = nullptr;
};

// Resolves the {shard} children of the shard metric families in
// `registry` (adding the families if this is the registry's first shard).
// The caller caches the result; the children are plain atomics.
ShardMetricSet ResolveShardMetricSet(obs::MetricRegistry* registry,
                                     const std::string& shard);

}  // namespace crowdtruth::shard

#endif  // CROWDTRUTH_SHARD_METRICS_H_
