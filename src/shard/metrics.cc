#include "shard/metrics.h"

#include <vector>

namespace crowdtruth::shard {

ShardMetricSet ResolveShardMetricSet(obs::MetricRegistry* registry,
                                     const std::string& shard) {
  const std::vector<std::string> names = {"shard"};
  const std::vector<std::string> label = {shard};
  ShardMetricSet set;
  set.barrier_wait =
      &registry
           ->AddHistogramFamily(
               "crowdtruth_shard_barrier_wait_seconds",
               "Time a shard spent waiting at a barrier for its peers.",
               names, obs::HistogramBuckets::LatencySeconds())
           .WithLabels(label);
  set.summary_bytes =
      &registry
           ->AddCounterFamily(
               "crowdtruth_shard_summary_bytes_total",
               "Serialized worker-summary bytes contributed to barrier "
               "all-reduces.",
               names)
           .WithLabels(label);
  set.checkpoint_seconds =
      &registry
           ->AddHistogramFamily("crowdtruth_shard_checkpoint_seconds",
                                "Wall-clock cost of writing one checkpoint.",
                                names,
                                obs::HistogramBuckets::LatencySeconds())
           .WithLabels(label);
  set.checkpoints =
      &registry
           ->AddCounterFamily("crowdtruth_shard_checkpoints_total",
                              "Checkpoints written.", names)
           .WithLabels(label);
  set.barriers =
      &registry
           ->AddCounterFamily("crowdtruth_shard_barriers_total",
                              "Cross-shard barriers completed.", names)
           .WithLabels(label);
  set.restarts =
      &registry
           ->AddCounterFamily("crowdtruth_shard_restarts_total",
                              "Restores from a checkpoint.", names)
           .WithLabels(label);
  return set;
}

}  // namespace crowdtruth::shard
