// The unified truth-inference framework (paper §3, Algorithm 1).
//
// Every method consumes workers' answers V and produces (a) the inferred
// truth v*_i for each task and (b) a scalar quality summary q^w per worker.
// Two method interfaces mirror the two answer domains:
//   * CategoricalMethod — decision-making and single-choice tasks;
//   * NumericMethod — numeric tasks.
//
// InferenceOptions carries the common controls of Algorithm 1 (iteration
// budget, convergence threshold, seed) plus the two golden-task mechanisms
// studied in §6.3.2-6.3.3:
//   * qualification test — initial per-worker quality estimates (line 1 of
//     Algorithm 1); only some methods can consume these (Table 7 lists 8);
//   * hidden test — known truth for a subset of tasks, which capable
//     methods (9 in Figure 7-9) clamp in step 1 and exploit in step 2.
#ifndef CROWDTRUTH_CORE_INFERENCE_H_
#define CROWDTRUTH_CORE_INFERENCE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace crowdtruth::core {

class TraceSink;  // core/trace.h

struct InferenceOptions {
  // Maximum outer iterations of the infer-truth / estimate-quality loop.
  int max_iterations = 100;
  // Convergence threshold on the parameter change between iterations
  // (the paper suggests 1e-3; we default slightly tighter).
  double tolerance = 1e-4;
  // Seed for any randomized step (tie-breaking, Gibbs sampling, message
  // initialization). The same seed yields the same result.
  uint64_t seed = 42;
  // Intra-method data parallelism (core/em_loop.h): the iterative methods'
  // truth step shards over tasks and their quality step over workers. Each
  // task's belief and each worker's quality is reduced serially over its
  // own votes, so results are bit-identical at any thread count. 1 runs
  // serially; <= 0 resolves to util::DefaultThreads(). The Gibbs samplers
  // (BCC, CBCC) consume a single sequential RNG stream and always run
  // their kernels serially.
  int num_threads = 1;

  // Qualification test (§6.3.2). When non-empty, must have one entry per
  // worker. For categorical datasets the entry is the worker's estimated
  // accuracy in [0, 1]; for numeric datasets it is the worker's estimated
  // RMSE (>= 0). Methods that cannot consume an initial quality ignore it.
  std::vector<double> initial_worker_quality;

  // Hidden test (§6.3.3). When non-empty, must have one entry per task;
  // data::kNoTruth marks non-golden tasks. Capable methods pin the truth of
  // golden tasks and use them when estimating worker quality.
  std::vector<data::LabelId> golden_labels;
  // Numeric variant; NaN marks non-golden tasks.
  std::vector<double> golden_values;

  // Task topic/domain labels (paper §4.1.2 "Latent Topics" / §4.2.5
  // "Diverse Skills"). When non-empty, must have one non-negative entry per
  // task. Consumed by topic-aware methods (TopicSkills); others ignore it.
  // In deployments these come from task metadata or a topic model over the
  // task text.
  std::vector<int> task_groups;

  // Observability (core/trace.h). When non-null, iterative methods emit one
  // IterationEvent per outer iteration — convergence delta plus per-phase
  // (truth-step / quality-step) wall-clock. Not owned; must outlive the
  // Infer call. Sinks are not synchronized: give each concurrent run its
  // own sink.
  TraceSink* trace = nullptr;
};

inline constexpr double kNoGoldenValue =
    std::numeric_limits<double>::quiet_NaN();

struct CategoricalResult {
  // v*_i: inferred label per task.
  std::vector<data::LabelId> labels;
  // Per-task posterior over choices (empty for methods that produce hard
  // assignments only, e.g. MV, PM, KOS).
  std::vector<std::vector<double>> posterior;
  // q^w: scalar per-worker quality summary. Semantics are method-specific
  // (probability, expected diagonal of the confusion matrix, optimization
  // weight, ...); higher always means better.
  std::vector<double> worker_quality;
  // Full confusion matrices (flattened l x l, row j = true class), for the
  // methods whose worker model is a confusion matrix (D&S, LFC, BCC,
  // VI-MF); empty otherwise.
  std::vector<std::vector<double>> worker_confusion;
  // Per-task easiness estimates for task-model methods (GLAD's beta_i);
  // higher = easier. Empty for methods without a task model.
  std::vector<double> task_easiness;
  // Per-iteration parameter change (the convergence measure); useful for
  // diagnosing oscillation or premature stops. Filled by the iterative
  // methods.
  std::vector<double> convergence_trace;
  int iterations = 0;
  bool converged = false;
};

struct NumericResult {
  std::vector<double> values;
  std::vector<double> worker_quality;
  // Per-iteration maximum truth-estimate change.
  std::vector<double> convergence_trace;
  int iterations = 0;
  bool converged = false;
};

class CategoricalMethod {
 public:
  virtual ~CategoricalMethod() = default;
  virtual std::string name() const = 0;
  virtual CategoricalResult Infer(const data::CategoricalDataset& dataset,
                                  const InferenceOptions& options) const = 0;
};

class NumericMethod {
 public:
  virtual ~NumericMethod() = default;
  virtual std::string name() const = 0;
  virtual NumericResult Infer(const data::NumericDataset& dataset,
                              const InferenceOptions& options) const = 0;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_INFERENCE_H_
