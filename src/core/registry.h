// Method registry: the paper's Table 4 in code form. Maps method names to
// factories plus the metadata the experiment harness needs — which task
// types a method handles and whether it can consume qualification-test
// initial qualities (§6.3.2, 8 methods) or hidden-test golden tasks
// (§6.3.3, 9 methods).
#ifndef CROWDTRUTH_CORE_REGISTRY_H_
#define CROWDTRUTH_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/inference.h"

namespace crowdtruth::core {

struct MethodInfo {
  std::string name;
  // Task-type support (paper Table 4 "Task Types" column).
  bool decision_making = false;
  bool single_choice = false;  // l > 2
  bool numeric = false;
  // Experiment capabilities.
  bool supports_qualification = false;
  bool supports_golden = false;
  // Table 4 taxonomy columns, for documentation output.
  std::string task_model;
  std::string worker_model;
  std::string technique;
};

// All 17 surveyed methods, in the paper's Table 4 order.
const std::vector<MethodInfo>& AllMethods();

// Looks up metadata by name; aborts on unknown names (method lists are
// static, so an unknown name is a programming error).
const MethodInfo& GetMethodInfo(const std::string& name);

// Factories. Return nullptr when the method does not handle the domain
// (e.g. MakeNumericMethod("MV")).
std::unique_ptr<CategoricalMethod> MakeCategoricalMethod(
    const std::string& name);
std::unique_ptr<NumericMethod> MakeNumericMethod(const std::string& name);

// Convenience selections used throughout the benches.
// Methods applicable to decision-making datasets (14, Figure 4).
std::vector<std::string> DecisionMakingMethodNames();
// Methods applicable to single-choice datasets with l > 2 (10, Figure 5).
std::vector<std::string> SingleChoiceMethodNames();
// Methods applicable to numeric datasets (5, Figure 6).
std::vector<std::string> NumericMethodNames();

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_REGISTRY_H_
