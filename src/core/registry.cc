#include "core/registry.h"

#include "core/methods/baselines_numeric.h"
#include "core/methods/bcc.h"
#include "core/methods/catd.h"
#include "core/methods/cbcc.h"
#include "core/methods/ds.h"
#include "core/methods/glad.h"
#include "core/methods/kos.h"
#include "core/methods/lfc.h"
#include "core/methods/lfc_n.h"
#include "core/methods/minimax.h"
#include "core/methods/multi.h"
#include "core/methods/mv.h"
#include "core/methods/pm.h"
#include "core/methods/vi_bp.h"
#include "core/methods/vi_mf.h"
#include "core/methods/zc.h"
#include "util/logging.h"

namespace crowdtruth::core {
namespace {

std::vector<MethodInfo> BuildAllMethods() {
  std::vector<MethodInfo> methods;
  auto add = [&methods](MethodInfo info) { methods.push_back(std::move(info)); };
  // Order and taxonomy follow the paper's Table 4; the qualification /
  // golden capability flags follow Table 7 and Figures 7-9.
  add({.name = "MV", .decision_making = true, .single_choice = true,
       .task_model = "No Model", .worker_model = "No Model",
       .technique = "Direct Computation"});
  add({.name = "ZC", .decision_making = true, .single_choice = true,
       .supports_qualification = true, .supports_golden = true,
       .task_model = "No Model", .worker_model = "Worker Probability",
       .technique = "PGM"});
  add({.name = "GLAD", .decision_making = true, .single_choice = true,
       .supports_qualification = true, .supports_golden = true,
       .task_model = "Task Difficulty", .worker_model = "Worker Probability",
       .technique = "PGM"});
  add({.name = "D&S", .decision_making = true, .single_choice = true,
       .supports_qualification = true, .supports_golden = true,
       .task_model = "No Model", .worker_model = "Confusion Matrix",
       .technique = "PGM"});
  add({.name = "Minimax", .decision_making = true, .single_choice = true,
       .supports_golden = true, .task_model = "No Model",
       .worker_model = "Diverse Skills", .technique = "Optimization"});
  add({.name = "BCC", .decision_making = true, .single_choice = true,
       .task_model = "No Model", .worker_model = "Confusion Matrix",
       .technique = "PGM"});
  add({.name = "CBCC", .decision_making = true, .single_choice = true,
       .task_model = "No Model", .worker_model = "Confusion Matrix",
       .technique = "PGM"});
  add({.name = "LFC", .decision_making = true, .single_choice = true,
       .supports_qualification = true, .supports_golden = true,
       .task_model = "No Model", .worker_model = "Confusion Matrix",
       .technique = "PGM"});
  add({.name = "CATD", .decision_making = true, .single_choice = true,
       .numeric = true, .supports_qualification = true,
       .supports_golden = true, .task_model = "No Model",
       .worker_model = "Worker Probability, Confidence",
       .technique = "Optimization"});
  add({.name = "PM", .decision_making = true, .single_choice = true,
       .numeric = true, .supports_qualification = true,
       .supports_golden = true, .task_model = "No Model",
       .worker_model = "Worker Probability", .technique = "Optimization"});
  add({.name = "Multi", .decision_making = true,
       .task_model = "Latent Topics",
       .worker_model = "Diverse Skills, Worker Bias, Worker Variance",
       .technique = "PGM"});
  add({.name = "KOS", .decision_making = true, .task_model = "No Model",
       .worker_model = "Worker Probability", .technique = "PGM"});
  add({.name = "VI-BP", .decision_making = true, .task_model = "No Model",
       .worker_model = "Confusion Matrix", .technique = "PGM"});
  add({.name = "VI-MF", .decision_making = true,
       .supports_qualification = true, .supports_golden = true,
       .task_model = "No Model", .worker_model = "Confusion Matrix",
       .technique = "PGM"});
  add({.name = "LFC_N", .numeric = true, .supports_qualification = true,
       .supports_golden = true, .task_model = "No Model",
       .worker_model = "Worker Variance", .technique = "PGM"});
  add({.name = "Mean", .numeric = true, .task_model = "No Model",
       .worker_model = "No Model", .technique = "Direct Computation"});
  add({.name = "Median", .numeric = true, .task_model = "No Model",
       .worker_model = "No Model", .technique = "Direct Computation"});
  return methods;
}

}  // namespace

const std::vector<MethodInfo>& AllMethods() {
  static const std::vector<MethodInfo>& methods =
      *new std::vector<MethodInfo>(BuildAllMethods());
  return methods;
}

const MethodInfo& GetMethodInfo(const std::string& name) {
  for (const MethodInfo& info : AllMethods()) {
    if (info.name == name) return info;
  }
  CROWDTRUTH_CHECK(false) << "unknown method: " << name;
  __builtin_unreachable();
}

std::unique_ptr<CategoricalMethod> MakeCategoricalMethod(
    const std::string& name) {
  if (name == "MV") return std::make_unique<MajorityVoting>();
  if (name == "ZC") return std::make_unique<Zc>();
  if (name == "GLAD") return std::make_unique<Glad>();
  if (name == "D&S") return std::make_unique<DawidSkene>();
  if (name == "Minimax") return std::make_unique<Minimax>();
  if (name == "BCC") return std::make_unique<Bcc>();
  if (name == "CBCC") return std::make_unique<Cbcc>();
  if (name == "LFC") return std::make_unique<Lfc>();
  if (name == "CATD") return std::make_unique<CatdCategorical>();
  if (name == "PM") return std::make_unique<PmCategorical>();
  if (name == "Multi") return std::make_unique<Multi>();
  if (name == "KOS") return std::make_unique<Kos>();
  if (name == "VI-BP") return std::make_unique<ViBp>();
  if (name == "VI-MF") return std::make_unique<ViMf>();
  return nullptr;
}

std::unique_ptr<NumericMethod> MakeNumericMethod(const std::string& name) {
  if (name == "CATD") return std::make_unique<CatdNumeric>();
  if (name == "PM") return std::make_unique<PmNumeric>();
  if (name == "LFC_N") return std::make_unique<LfcNumeric>();
  if (name == "Mean") return std::make_unique<MeanBaseline>();
  if (name == "Median") return std::make_unique<MedianBaseline>();
  return nullptr;
}

std::vector<std::string> DecisionMakingMethodNames() {
  std::vector<std::string> names;
  for (const MethodInfo& info : AllMethods()) {
    if (info.decision_making) names.push_back(info.name);
  }
  return names;
}

std::vector<std::string> SingleChoiceMethodNames() {
  std::vector<std::string> names;
  for (const MethodInfo& info : AllMethods()) {
    if (info.single_choice) names.push_back(info.name);
  }
  return names;
}

std::vector<std::string> NumericMethodNames() {
  std::vector<std::string> names;
  for (const MethodInfo& info : AllMethods()) {
    if (info.numeric) names.push_back(info.name);
  }
  return names;
}

}  // namespace crowdtruth::core
