// BCC — Bayesian Classifier Combination (Kim & Ghahramani, AISTATS'12;
// paper §5.3(2) "Optimization Function").
//
// Same generative model as D&S (per-worker confusion matrices, class
// prior), but maximizing the posterior joint probability via Gibbs
// sampling: alternately sample (a) each confusion-matrix row from its
// Dirichlet posterior, (b) the class prior from its Dirichlet posterior,
// and (c) each task's truth from its conditional. After burn-in, per-task
// label marginals are accumulated and the mode is reported.
#ifndef CROWDTRUTH_CORE_METHODS_BCC_H_
#define CROWDTRUTH_CORE_METHODS_BCC_H_

#include "core/inference.h"

namespace crowdtruth::core {

class Bcc : public CategoricalMethod {
 public:
  Bcc(int burn_in = 20, int samples = 60, double prior_diag = 2.0,
      double prior_off = 1.0)
      : burn_in_(burn_in),
        samples_(samples),
        prior_diag_(prior_diag),
        prior_off_(prior_off) {}

  std::string name() const override { return "BCC"; }
  CategoricalResult Infer(const data::CategoricalDataset& dataset,
                          const InferenceOptions& options) const override;

 protected:
  int burn_in_;
  int samples_;
  double prior_diag_;
  double prior_off_;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_BCC_H_
