// RobustNumeric — an outlier-resistant numeric aggregator, addressing the
// paper's conclusion that "numeric tasks are not well-addressed ... there
// is still room to improve" (§7(1)).
//
// Combines the two numeric worker-model ideas the survey covers —
// precision weighting (LFC_N) and robust location estimation (Median) —
// into one method: each task's truth is a redescending (Tukey bisquare)
// M-estimate computed by iteratively reweighted least squares from a
// median start, where an answer's weight is the product of its worker's
// inverse variance and the bisquare factor of its standardized residual;
// worker scales are MAD-based (so contamination cannot inflate them).
// Gaussian answers get near-Mean efficiency; gross outliers (fat-finger
// answers, spam values) receive exactly zero weight.
#ifndef CROWDTRUTH_CORE_METHODS_ROBUST_NUMERIC_H_
#define CROWDTRUTH_CORE_METHODS_ROBUST_NUMERIC_H_

#include "core/inference.h"

namespace crowdtruth::core {

class RobustNumeric : public NumericMethod {
 public:
  // `tuning_c` is the bisquare cutoff in standardized-residual units
  // (4.685 gives 95% Gaussian efficiency); `prior_a`/`prior_b` regularize
  // worker variances like LFC_N.
  RobustNumeric(double tuning_c = 4.685, double prior_a = 2.0,
                double prior_b = 2.0)
      : tuning_c_(tuning_c), prior_a_(prior_a), prior_b_(prior_b) {}

  std::string name() const override { return "Robust"; }
  NumericResult Infer(const data::NumericDataset& dataset,
                      const InferenceOptions& options) const override;

 private:
  double tuning_c_;
  double prior_a_;
  double prior_b_;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_ROBUST_NUMERIC_H_
