// LFC-Features — the full "Learning From Crowds" model of Raykar et al.
// (JMLR'10), with the task-feature classifier the survey's LFC omits. The
// paper's future direction §7(7) ("Incorporation of More Rich Features")
// asks how much task content can add; this method answers it.
//
// Binary tasks with feature vectors x_i. Generative model:
//   Pr(v*_i = T) = sigmoid(theta . x_i)          (logistic classifier)
//   Pr(v_i^w | v*_i) = confusion matrix, as in LFC.
// Joint EM: the E-step combines the classifier prior with the workers'
// answers; the M-step refits both the confusion matrices (closed form,
// with LFC's Dirichlet priors) and theta (a few gradient steps on the
// soft-label logistic log-likelihood with L2 regularization).
//
// The classifier shares statistical strength across tasks, which is
// decisive at low redundancy: a task with one answer still gets an
// informed prior from its content.
#ifndef CROWDTRUTH_CORE_METHODS_LFC_FEATURES_H_
#define CROWDTRUTH_CORE_METHODS_LFC_FEATURES_H_

#include <vector>

#include "core/inference.h"

namespace crowdtruth::core {

class LfcFeatures : public CategoricalMethod {
 public:
  // `features` must outlive the method and hold one vector per task (a
  // constant 1 is appended internally as the intercept).
  explicit LfcFeatures(const std::vector<std::vector<double>>* features,
                       double prior_diag = 2.0, double prior_off = 1.0,
                       int gradient_steps = 20, double learning_rate = 0.5,
                       double l2 = 0.01)
      : features_(features),
        prior_diag_(prior_diag),
        prior_off_(prior_off),
        gradient_steps_(gradient_steps),
        learning_rate_(learning_rate),
        l2_(l2) {}

  std::string name() const override { return "LFC-Features"; }
  // Requires dataset.num_choices() == 2 and features for every task.
  CategoricalResult Infer(const data::CategoricalDataset& dataset,
                          const InferenceOptions& options) const override;

 private:
  const std::vector<std::vector<double>>* features_;
  double prior_diag_;
  double prior_off_;
  int gradient_steps_;
  double learning_rate_;
  double l2_;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_LFC_FEATURES_H_
