#include "core/methods/multi.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/common.h"
#include "core/em_loop.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/special_functions.h"

namespace crowdtruth::core {

CategoricalResult Multi::Infer(const data::CategoricalDataset& dataset,
                               const InferenceOptions& options) const {
  CROWDTRUTH_CHECK_EQ(dataset.num_choices(), 2)
      << "Multi supports decision-making (binary) tasks only";
  const int n = dataset.num_tasks();
  const int num_workers = dataset.num_workers();
  const int k = num_dimensions_;
  const data::CategoricalCsr& csr = dataset.csr();
  util::Rng rng(options.seed);

  // Gaussian prior strengths for task embeddings, worker directions
  // (centered on e_0, the "competent worker" axis), and biases.
  constexpr double kLambdaX = 0.5;
  constexpr double kLambdaU = 0.5;
  constexpr double kLambdaTau = 1.0;

  // Task embeddings: dim 0 initialized from the vote margin (breaks the
  // global sign symmetry of the model), other dims from small noise.
  std::vector<std::vector<double>> x(n, std::vector<double>(k, 0.0));
  for (data::TaskId t = 0; t < n; ++t) {
    const auto& votes = dataset.AnswersForTask(t);
    if (!votes.empty()) {
      double margin = 0.0;
      for (const data::TaskVote& vote : votes) {
        margin += vote.label == 0 ? 1.0 : -1.0;
      }
      x[t][0] = margin / votes.size();
    }
    for (int d = 1; d < k; ++d) x[t][d] = rng.Normal(0.0, 0.1);
  }
  std::vector<std::vector<double>> u(num_workers,
                                     std::vector<double>(k, 0.0));
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    u[w][0] = 1.0;
    for (int d = 1; d < k; ++d) u[w][d] = rng.Normal(0.0, 0.1);
  }
  std::vector<double> tau(num_workers, 0.0);

  // Per-answer gradient normalization: keeps one learning rate valid for
  // both tail workers (few answers) and head workers (thousands).
  std::vector<double> worker_scale(num_workers, 1.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    worker_scale[w] =
        1.0 / std::max<size_t>(dataset.AnswersByWorker(w).size(), 1);
  }
  std::vector<double> task_scale(n, 1.0);
  for (data::TaskId t = 0; t < n; ++t) {
    task_scale[t] =
        1.0 / std::max<size_t>(dataset.AnswersForTask(t).size(), 1);
  }

  EmDriver driver = EmDriver::FromOptions(options, "Multi");
  driver.convergence = EmConvergence::kDeltaIsZero;
  driver.min_iterations = 2;
  driver.record_trace = false;

  std::vector<data::LabelId> labels(n, 0);
  std::vector<data::LabelId> next(n, 0);
  std::vector<std::vector<double>> grad_x(n, std::vector<double>(k, 0.0));
  std::vector<std::vector<double>> grad_u(num_workers,
                                          std::vector<double>(k, 0.0));
  std::vector<double> grad_tau(num_workers, 0.0);
  // Per-answer logistic coefficients, computed once per gradient step in
  // the task-major pass and read by the worker-major pass through the CSR
  // cross-link. Both passes evaluate the identical score expression on the
  // same parameters, so caching changes no bits — it just halves the
  // per-step Sigmoid and dot-product count.
  std::vector<double> coefficient_cache(csr.num_answers());
  // Tasks whose decode score was exactly zero take a coin-flip label; the
  // draw happens in a serial task-order pass to preserve the RNG stream.
  std::vector<char> coin_flip(n, 0);

  std::vector<EmStep> steps;
  // Gradient of the penalized logistic log-likelihood. grad_x shards by
  // task, grad_u / grad_tau by worker.
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    for (int step = 0; step < gradient_steps_; ++step) {
      context.ParallelShards(n, [&](int t, int) {
        for (int d = 0; d < k; ++d) {
          grad_x[t][d] = -kLambdaX * x[t][d] * task_scale[t];
        }
        for (int32_t a = csr.task_offsets[t]; a < csr.task_offsets[t + 1];
             ++a) {
          const data::WorkerId w = csr.task_workers[a];
          double score = -tau[w];
          for (int d = 0; d < k; ++d) score += u[w][d] * x[t][d];
          const double spin = csr.task_labels[a] == 0 ? 1.0 : -1.0;
          // d/d(score) log sigmoid(spin * score) = spin * (1 - sigmoid).
          const double coefficient =
              spin * (1.0 - util::Sigmoid(spin * score));
          coefficient_cache[a] = coefficient;
          for (int d = 0; d < k; ++d) {
            grad_x[t][d] += coefficient * u[w][d] * task_scale[t];
          }
        }
      });
      context.ParallelShards(num_workers, [&](int w, int) {
        grad_u[w][0] = -kLambdaU * (u[w][0] - 1.0) * worker_scale[w];
        for (int d = 1; d < k; ++d) {
          grad_u[w][d] = -kLambdaU * u[w][d] * worker_scale[w];
        }
        grad_tau[w] = -kLambdaTau * tau[w] * worker_scale[w];
        for (int32_t a = csr.worker_offsets[w]; a < csr.worker_offsets[w + 1];
             ++a) {
          const data::TaskId t = csr.worker_tasks[a];
          const double coefficient = coefficient_cache[csr.worker_to_task[a]];
          for (int d = 0; d < k; ++d) {
            grad_u[w][d] += coefficient * x[t][d] * worker_scale[w];
          }
          grad_tau[w] -= coefficient * worker_scale[w];
        }
      });
      for (data::TaskId t = 0; t < n; ++t) {
        for (int d = 0; d < k; ++d) {
          x[t][d] += learning_rate_ * grad_x[t][d];
        }
      }
      for (data::WorkerId w = 0; w < num_workers; ++w) {
        for (int d = 0; d < k; ++d) {
          u[w][d] += learning_rate_ * grad_u[w][d];
        }
        tau[w] += learning_rate_ * grad_tau[w];
      }
    }
  }});
  // Decode truth: project each task onto the mean worker direction.
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    std::vector<double> mean_u(k, 0.0);
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      for (int d = 0; d < k; ++d) mean_u[d] += u[w][d];
    }
    for (int d = 0; d < k; ++d) mean_u[d] /= std::max(num_workers, 1);

    context.ParallelShards(n, [&](int t, int) {
      double score = 0.0;
      for (int d = 0; d < k; ++d) score += mean_u[d] * x[t][d];
      coin_flip[t] = 0;
      if (score > 0.0) {
        next[t] = 0;
      } else if (score < 0.0) {
        next[t] = 1;
      } else {
        coin_flip[t] = 1;
      }
    });
    for (data::TaskId t = 0; t < n; ++t) {
      if (coin_flip[t]) next[t] = rng.UniformInt(0, 1);
    }
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool) {
                         int flips = 0;
                         for (data::TaskId t = 0; t < n; ++t) {
                           if (next[t] != labels[t]) ++flips;
                         }
                         labels = next;
                         return static_cast<double>(flips) / std::max(n, 1);
                       }),
             &result);

  // Worker quality: projection of the worker's direction onto the
  // consensus direction (negative = adversarial, ~0 = spammer).
  std::vector<double> mean_u(k, 0.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    for (int d = 0; d < k; ++d) mean_u[d] += u[w][d];
  }
  double mean_norm = 0.0;
  for (int d = 0; d < k; ++d) mean_norm += mean_u[d] * mean_u[d];
  mean_norm = std::sqrt(mean_norm);
  result.worker_quality.assign(num_workers, 0.0);
  if (mean_norm > 0.0) {
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      double dot = 0.0;
      for (int d = 0; d < k; ++d) dot += u[w][d] * mean_u[d];
      result.worker_quality[w] = dot / mean_norm;
    }
  }
  result.labels = std::move(labels);
  return result;
}

}  // namespace crowdtruth::core
