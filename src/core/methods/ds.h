// D&S (Dawid & Skene, 1979; paper §5.3(2)): maximum-likelihood estimation
// of per-worker confusion matrices and task truth via EM — the classical
// confusion-matrix method every later confusion-matrix approach extends.
#ifndef CROWDTRUTH_CORE_METHODS_DS_H_
#define CROWDTRUTH_CORE_METHODS_DS_H_

#include "core/inference.h"

namespace crowdtruth::core {

class DawidSkene : public CategoricalMethod {
 public:
  std::string name() const override { return "D&S"; }
  CategoricalResult Infer(const data::CategoricalDataset& dataset,
                          const InferenceOptions& options) const override;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_DS_H_
