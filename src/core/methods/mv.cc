#include "core/methods/mv.h"

#include <cstdint>

#include "core/common.h"
#include "util/rng.h"

namespace crowdtruth::core {

CategoricalResult MajorityVoting::Infer(
    const data::CategoricalDataset& dataset,
    const InferenceOptions& options) const {
  util::Rng rng(options.seed);
  CategoricalResult result;
  result.labels = MajorityVoteLabels(dataset, options, rng);
  result.iterations = 1;
  result.converged = true;

  const data::CategoricalCsr& csr = dataset.csr();
  result.worker_quality.assign(dataset.num_workers(), 0.0);
  for (data::WorkerId w = 0; w < dataset.num_workers(); ++w) {
    const int32_t begin = csr.worker_offsets[w];
    const int32_t end = csr.worker_offsets[w + 1];
    if (begin == end) continue;
    int agree = 0;
    for (int32_t a = begin; a < end; ++a) {
      if (csr.worker_labels[a] == result.labels[csr.worker_tasks[a]]) ++agree;
    }
    result.worker_quality[w] = static_cast<double>(agree) / (end - begin);
  }
  return result;
}

}  // namespace crowdtruth::core
