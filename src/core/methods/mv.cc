#include "core/methods/mv.h"

#include "core/common.h"
#include "util/rng.h"

namespace crowdtruth::core {

CategoricalResult MajorityVoting::Infer(
    const data::CategoricalDataset& dataset,
    const InferenceOptions& options) const {
  util::Rng rng(options.seed);
  CategoricalResult result;
  result.labels = MajorityVoteLabels(dataset, options, rng);
  result.iterations = 1;
  result.converged = true;

  result.worker_quality.assign(dataset.num_workers(), 0.0);
  for (data::WorkerId w = 0; w < dataset.num_workers(); ++w) {
    const auto& votes = dataset.AnswersByWorker(w);
    if (votes.empty()) continue;
    int agree = 0;
    for (const data::WorkerVote& vote : votes) {
      if (vote.label == result.labels[vote.task]) ++agree;
    }
    result.worker_quality[w] = static_cast<double>(agree) / votes.size();
  }
  return result;
}

}  // namespace crowdtruth::core
