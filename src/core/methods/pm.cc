#include "core/methods/pm.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/common.h"
#include "core/em_loop.h"
#include "util/rng.h"
#include "util/safe_math.h"

namespace crowdtruth::core {
namespace {

// Keeps -log(err / max_err) finite when a worker makes zero errors; with
// this epsilon the §3 running example converges to q ~= 16-17 for the
// error-free worker, matching the paper's reported 16.09.
constexpr double kErrorEpsilon = 1e-7;

// Step 2 shared by both task types: map accumulated distances to weights.
// No log floor here: an error-free worker against a huge max_error takes a
// ratio far below any generic floor, and flooring it would change
// well-formed results.
std::vector<double> WeightsFromErrors(const std::vector<double>& errors) {
  double max_error = 0.0;
  for (double e : errors) {
    if (std::isfinite(e)) max_error = std::max(max_error, e);
  }
  std::vector<double> weights(errors.size(), 0.0);
  for (size_t w = 0; w < errors.size(); ++w) {
    // A non-finite accumulated distance (squared-error overflow on extreme
    // numeric answers) counts as the worst observed error: weight 0.
    const double e = std::isfinite(errors[w]) ? errors[w] : max_error;
    weights[w] =
        -std::log((e + kErrorEpsilon) / (max_error + kErrorEpsilon));
  }
  return weights;
}

}  // namespace

CategoricalResult PmCategorical::Infer(
    const data::CategoricalDataset& dataset,
    const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  const data::CategoricalCsr& csr = dataset.csr();
  const bool golden = HasGoldenLabels(dataset, options);
  util::Rng rng(options.seed);

  std::vector<double> quality(num_workers, 1.0);
  if (!options.initial_worker_quality.empty()) {
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      quality[w] = std::max(options.initial_worker_quality[w], 0.05);
    }
  }

  EmDriver driver = EmDriver::FromOptions(options, "PM");
  driver.convergence = EmConvergence::kDeltaIsZero;
  driver.min_iterations = 2;

  std::vector<data::LabelId> labels(n, 0);
  std::vector<data::LabelId> next(n, 0);
  std::vector<double> errors(num_workers, 0.0);
  std::vector<std::vector<double>> scores(driver.num_threads,
                                          std::vector<double>(l));
  // Tasks whose weighted vote tied (rare); the random tie-break happens in a
  // serial task-order pass so the RNG stream matches the serial algorithm.
  std::vector<std::vector<int>> tie_sets(n);

  std::vector<EmStep> steps;
  // Step 1: weighted vote per task.
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    context.ParallelShards(n, [&](int t, int slot) {
      tie_sets[t].clear();
      if (golden && options.golden_labels[t] != data::kNoTruth) {
        next[t] = options.golden_labels[t];
        return;
      }
      std::vector<double>& score = scores[slot];
      std::fill(score.begin(), score.end(), 0.0);
      double score_total = 0.0;
      const int32_t begin = csr.task_offsets[t];
      const int32_t end = csr.task_offsets[t + 1];
      for (int32_t a = begin; a < end; ++a) {
        score[csr.task_labels[a]] += quality[csr.task_workers[a]];
        score_total += quality[csr.task_workers[a]];
      }
      if (score_total <= 0.0) {
        // All weights are zero ("everyone is equally bad"): degrade to an
        // unweighted vote rather than a uniformly random choice.
        for (int32_t a = begin; a < end; ++a) {
          score[csr.task_labels[a]] += 1.0;
        }
      }
      double best = -1.0;
      std::vector<int>& ties = tie_sets[t];
      for (int z = 0; z < l; ++z) {
        if (score[z] > best + 1e-12) {
          best = score[z];
          ties.assign(1, z);
        } else if (std::fabs(score[z] - best) <= 1e-12) {
          ties.push_back(z);
        }
      }
      if (ties.size() == 1) next[t] = ties[0];
    });
    for (data::TaskId t = 0; t < n; ++t) {
      if (tie_sets[t].size() > 1) {
        next[t] = tie_sets[t][rng.UniformInt(
            0, static_cast<int>(tie_sets[t].size()) - 1)];
      }
    }
  }});
  // Step 2: mistake counts -> weights.
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    context.ParallelShards(num_workers, [&](int w, int) {
      errors[w] = 0.0;
      for (int32_t a = csr.worker_offsets[w]; a < csr.worker_offsets[w + 1];
           ++a) {
        if (csr.worker_labels[a] != next[csr.worker_tasks[a]]) {
          errors[w] += 1.0;
        }
      }
    });
    quality = WeightsFromErrors(errors);
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool) {
                         int changed = 0;
                         for (data::TaskId t = 0; t < n; ++t) {
                           if (next[t] != labels[t]) ++changed;
                         }
                         labels = next;
                         return static_cast<double>(changed) / std::max(n, 1);
                       }),
             &result);

  result.labels = std::move(labels);
  result.worker_quality = std::move(quality);
  return result;
}

NumericResult PmNumeric::Infer(const data::NumericDataset& dataset,
                               const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int num_workers = dataset.num_workers();
  const data::NumericCsr& csr = dataset.csr();

  std::vector<double> quality(num_workers, 1.0);
  if (!options.initial_worker_quality.empty()) {
    // For numeric datasets the qualification estimate is an RMSE; convert
    // to a positive weight (smaller error -> larger weight).
    double max_sq = 0.0;
    for (double rmse : options.initial_worker_quality) {
      max_sq = std::max(max_sq, rmse * rmse);
    }
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      const double sq = options.initial_worker_quality[w] *
                        options.initial_worker_quality[w];
      quality[w] = -std::log((sq + kErrorEpsilon) / (max_sq + kErrorEpsilon)) +
                   kErrorEpsilon;
    }
  }

  EmDriver driver = EmDriver::FromOptions(options, "PM");
  driver.min_iterations = 2;

  std::vector<double> values(n, 0.0);
  std::vector<double> next(n, 0.0);
  std::vector<double> errors(num_workers, 0.0);

  std::vector<EmStep> steps;
  // Step 1: weighted mean per task.
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    context.ParallelShards(n, [&](int t, int) {
      const int32_t begin = csr.task_offsets[t];
      const int32_t end = csr.task_offsets[t + 1];
      if (begin == end) {
        next[t] = 0.0;
        return;
      }
      double weighted_sum = 0.0;
      double weight_total = 0.0;
      for (int32_t a = begin; a < end; ++a) {
        const double weight = std::max(quality[csr.task_workers[a]], 1e-9);
        weighted_sum += weight * csr.task_values[a];
        weight_total += weight;
      }
      // weight_total > 0 by the floor above; the fallback only fires when
      // weighted_sum itself overflowed.
      next[t] = util::SafeDiv(weighted_sum, weight_total, 0.0);
    });
    ClampGoldenValues(dataset, options, next);
  }});
  // Step 2: squared-error losses -> weights.
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    context.ParallelShards(num_workers, [&](int w, int) {
      errors[w] = 0.0;
      for (int32_t a = csr.worker_offsets[w]; a < csr.worker_offsets[w + 1];
           ++a) {
        const double err = csr.worker_values[a] - next[csr.worker_tasks[a]];
        errors[w] += err * err;
      }
    });
    quality = WeightsFromErrors(errors);
  }});

  NumericResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool) {
                         double change = 0.0;
                         for (data::TaskId t = 0; t < n; ++t) {
                           change =
                               std::max(change, std::fabs(next[t] - values[t]));
                         }
                         values = next;
                         return change;
                       }),
             &result);

  result.values = std::move(values);
  result.worker_quality = std::move(quality);
  return result;
}

}  // namespace crowdtruth::core
