// TopicSkills — a diverse-skills method in the spirit of FaitCrowd (Ma et
// al., KDD'15, the paper's [35]) and DOCS (Zheng et al., PVLDB'16, [59]):
// workers have different reliabilities on different task topics (a sports
// fan grades sports tasks better than entertainment tasks — paper §4.2.5).
//
// Where FaitCrowd learns topics from task text, this implementation takes
// the topic assignment as an input (InferenceOptions::task_groups) — the
// common deployment case where tasks carry category metadata — and runs EM
// over per-worker per-topic probabilities:
//   E-step:  mu_i(z) prop-to prod_{w in W_i} q_{w,g(i)}^{1{v=z}} *
//            ((1 - q_{w,g(i)}) / (l-1))^{1{v!=z}}
//   M-step:  q_{w,g} = (prior + sum_{i in T^w, g(i)=g} mu_i(v_i^w)) /
//            (2*prior + |T^w intersect g|)
// with a Beta-like prior keeping sparse (worker, topic) cells sane. When
// task_groups is absent, every task falls into one group and the method
// reduces exactly to ZC.
#ifndef CROWDTRUTH_CORE_METHODS_TOPIC_SKILLS_H_
#define CROWDTRUTH_CORE_METHODS_TOPIC_SKILLS_H_

#include "core/inference.h"

namespace crowdtruth::core {

class TopicSkills : public CategoricalMethod {
 public:
  // `prior_strength` is the pseudo-count pulling each (worker, topic)
  // probability toward the worker's overall probability.
  explicit TopicSkills(double prior_strength = 4.0)
      : prior_strength_(prior_strength) {}

  std::string name() const override { return "TopicSkills"; }
  CategoricalResult Infer(const data::CategoricalDataset& dataset,
                          const InferenceOptions& options) const override;

 private:
  double prior_strength_;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_TOPIC_SKILLS_H_
