#include "core/methods/lfc_n.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/common.h"
#include "core/em_loop.h"

namespace crowdtruth::core {

NumericResult LfcNumeric::Infer(const data::NumericDataset& dataset,
                                const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int num_workers = dataset.num_workers();
  const data::NumericCsr& csr = dataset.csr();

  std::vector<double> values = MeanValues(dataset, options);
  std::vector<double> variance(num_workers, 1.0);
  if (!options.initial_worker_quality.empty()) {
    // Qualification estimate is an RMSE; use its square as the initial
    // variance and recompute the truth once from those weights.
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      const double rmse = std::max(options.initial_worker_quality[w], 1e-3);
      variance[w] = rmse * rmse;
    }
    for (data::TaskId t = 0; t < n; ++t) {
      const int32_t begin = csr.task_offsets[t];
      const int32_t end = csr.task_offsets[t + 1];
      if (begin == end) continue;
      double weighted_sum = 0.0;
      double weight_total = 0.0;
      for (int32_t a = begin; a < end; ++a) {
        const double weight = 1.0 / variance[csr.task_workers[a]];
        weighted_sum += weight * csr.task_values[a];
        weight_total += weight;
      }
      values[t] = weighted_sum / weight_total;
    }
    ClampGoldenValues(dataset, options, values);
  }

  const EmDriver driver = EmDriver::FromOptions(options, "LFC_N");
  std::vector<double> next(n, 0.0);

  std::vector<EmStep> steps;
  // Variance step.
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    context.ParallelShards(num_workers, [&](int w, int) {
      const int32_t begin = csr.worker_offsets[w];
      const int32_t end = csr.worker_offsets[w + 1];
      double sum_sq = 0.0;
      for (int32_t a = begin; a < end; ++a) {
        const double err = csr.worker_values[a] - values[csr.worker_tasks[a]];
        sum_sq += err * err;
      }
      variance[w] = (prior_b_ + sum_sq) / (prior_a_ + (end - begin));
    });
  }});
  // Truth step: precision-weighted mean.
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    context.ParallelShards(n, [&](int t, int) {
      const int32_t begin = csr.task_offsets[t];
      const int32_t end = csr.task_offsets[t + 1];
      if (begin == end) {
        next[t] = 0.0;
        return;
      }
      double weighted_sum = 0.0;
      double weight_total = 0.0;
      for (int32_t a = begin; a < end; ++a) {
        const double weight =
            1.0 / std::max(variance[csr.task_workers[a]], 1e-9);
        weighted_sum += weight * csr.task_values[a];
        weight_total += weight;
      }
      next[t] = weighted_sum / weight_total;
    });
    ClampGoldenValues(dataset, options, next);
  }});

  NumericResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool) {
                         double change = 0.0;
                         for (data::TaskId t = 0; t < n; ++t) {
                           change =
                               std::max(change, std::fabs(next[t] - values[t]));
                         }
                         values = next;
                         return change;
                       }),
             &result);

  result.values = std::move(values);
  // Quality summary: negative standard deviation (higher = better).
  result.worker_quality.assign(num_workers, 0.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    result.worker_quality[w] = -std::sqrt(variance[w]);
  }
  return result;
}

}  // namespace crowdtruth::core
