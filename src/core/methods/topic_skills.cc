#include "core/methods/topic_skills.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/common.h"
#include "core/em_loop.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/special_functions.h"

namespace crowdtruth::core {
namespace {

constexpr double kQualityFloor = 1e-3;

}  // namespace

CategoricalResult TopicSkills::Infer(const data::CategoricalDataset& dataset,
                                     const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  util::Rng rng(options.seed);

  // Topic assignment; a single group when none is supplied (= ZC).
  std::vector<int> groups;
  int num_groups = 1;
  if (!options.task_groups.empty()) {
    CROWDTRUTH_CHECK_EQ(static_cast<int>(options.task_groups.size()), n);
    groups = options.task_groups;
    for (int g : groups) {
      CROWDTRUTH_CHECK_GE(g, 0);
      num_groups = std::max(num_groups, g + 1);
    }
  } else {
    groups.assign(n, 0);
  }

  Posterior posterior = InitialPosterior(dataset, options);

  // quality[w * num_groups + g], plus the worker's overall probability as
  // the shrinkage target.
  std::vector<double> quality(
      static_cast<size_t>(num_workers) * num_groups, 0.7);
  std::vector<double> overall(num_workers, 0.7);
  if (!options.initial_worker_quality.empty()) {
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      overall[w] = std::clamp(options.initial_worker_quality[w],
                              kQualityFloor, 1.0 - kQualityFloor);
      for (int g = 0; g < num_groups; ++g) {
        quality[static_cast<size_t>(w) * num_groups + g] = overall[w];
      }
    }
  }

  const EmDriver driver = EmDriver::FromOptions(options, "TopicSkills");
  std::vector<std::vector<double>> log_belief(driver.num_threads,
                                              std::vector<double>(l));
  std::vector<std::vector<double>> group_correct(
      driver.num_threads, std::vector<double>(num_groups));
  std::vector<std::vector<double>> group_count(
      driver.num_threads, std::vector<double>(num_groups));
  Posterior next;

  std::vector<EmStep> steps;
  // M-step: per-worker overall probability, then per-topic probabilities
  // shrunk toward it.
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    context.ParallelShards(num_workers, [&](int w, int slot) {
      const auto& votes = dataset.AnswersByWorker(w);
      if (votes.empty()) return;
      std::vector<double>& correct = group_correct[slot];
      std::vector<double>& count = group_count[slot];
      std::fill(correct.begin(), correct.end(), 0.0);
      std::fill(count.begin(), count.end(), 0.0);
      double total_correct = 0.0;
      for (const data::WorkerVote& vote : votes) {
        const double p = posterior[vote.task][vote.label];
        correct[groups[vote.task]] += p;
        count[groups[vote.task]] += 1.0;
        total_correct += p;
      }
      overall[w] = std::clamp(total_correct / votes.size(), kQualityFloor,
                              1.0 - kQualityFloor);
      for (int g = 0; g < num_groups; ++g) {
        const double estimate =
            (prior_strength_ * overall[w] + correct[g]) /
            (prior_strength_ + count[g]);
        quality[static_cast<size_t>(w) * num_groups + g] =
            std::clamp(estimate, kQualityFloor, 1.0 - kQualityFloor);
      }
    });
  }});
  // E-step with topic-specific probabilities.
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    next = posterior;
    context.ParallelShards(n, [&](int t, int slot) {
      const auto& votes = dataset.AnswersForTask(t);
      if (votes.empty()) return;
      std::vector<double>& belief = log_belief[slot];
      std::fill(belief.begin(), belief.end(), 0.0);
      const int g = groups[t];
      for (const data::TaskVote& vote : votes) {
        const double q =
            quality[static_cast<size_t>(vote.worker) * num_groups + g];
        const double log_right = std::log(q);
        const double log_wrong = std::log((1.0 - q) / (l - 1));
        for (int z = 0; z < l; ++z) {
          belief[z] += vote.label == z ? log_right : log_wrong;
        }
      }
      util::SoftmaxInPlace(belief);
      next[t] = belief;
    });
    ClampGolden(dataset, options, next);
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool) {
                         const double change = MaxAbsDiff(posterior, next);
                         posterior = std::move(next);
                         return change;
                       }),
             &result);

  result.labels = ArgmaxLabels(posterior, rng);
  result.posterior = std::move(posterior);
  result.worker_quality = std::move(overall);
  return result;
}

}  // namespace crowdtruth::core
