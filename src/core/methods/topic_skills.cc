#include "core/methods/topic_skills.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/common.h"
#include "core/em_loop.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/special_functions.h"

namespace crowdtruth::core {
namespace {

constexpr double kQualityFloor = 1e-3;

}  // namespace

CategoricalResult TopicSkills::Infer(const data::CategoricalDataset& dataset,
                                     const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  const data::CategoricalCsr& csr = dataset.csr();
  util::Rng rng(options.seed);

  // Topic assignment; a single group when none is supplied (= ZC).
  std::vector<int> groups;
  int num_groups = 1;
  if (!options.task_groups.empty()) {
    CROWDTRUTH_CHECK_EQ(static_cast<int>(options.task_groups.size()), n);
    groups = options.task_groups;
    for (int g : groups) {
      CROWDTRUTH_CHECK_GE(g, 0);
      num_groups = std::max(num_groups, g + 1);
    }
  } else {
    groups.assign(n, 0);
  }

  Posterior posterior = InitialPosterior(dataset, options);

  // quality[w * num_groups + g], plus the worker's overall probability as
  // the shrinkage target.
  std::vector<double> quality(
      static_cast<size_t>(num_workers) * num_groups, 0.7);
  std::vector<double> overall(num_workers, 0.7);
  if (!options.initial_worker_quality.empty()) {
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      overall[w] = std::clamp(options.initial_worker_quality[w],
                              kQualityFloor, 1.0 - kQualityFloor);
      for (int g = 0; g < num_groups; ++g) {
        quality[static_cast<size_t>(w) * num_groups + g] = overall[w];
      }
    }
  }

  const EmDriver driver = EmDriver::FromOptions(options, "TopicSkills");
  std::vector<std::vector<double>> log_belief(driver.num_threads,
                                              std::vector<double>(l));
  std::vector<std::vector<double>> group_correct(
      driver.num_threads, std::vector<double>(num_groups));
  std::vector<std::vector<double>> group_count(
      driver.num_threads, std::vector<double>(num_groups));
  // Per-(worker, group) log tables refreshed by the quality step: the
  // truth step's two std::log calls per answer become two reads. Same log
  // inputs, so the doubles are bitwise unchanged.
  std::vector<double> log_right(quality.size());
  std::vector<double> log_wrong(quality.size());
  Posterior next;

  std::vector<EmStep> steps;
  // M-step: per-worker overall probability, then per-topic probabilities
  // shrunk toward it.
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    context.ParallelShards(num_workers, [&](int w, int slot) {
      const int32_t begin = csr.worker_offsets[w];
      const int32_t end = csr.worker_offsets[w + 1];
      if (begin != end) {
        std::vector<double>& correct = group_correct[slot];
        std::vector<double>& count = group_count[slot];
        std::fill(correct.begin(), correct.end(), 0.0);
        std::fill(count.begin(), count.end(), 0.0);
        double total_correct = 0.0;
        for (int32_t a = begin; a < end; ++a) {
          const data::TaskId task = csr.worker_tasks[a];
          const double p = posterior[task][csr.worker_labels[a]];
          correct[groups[task]] += p;
          count[groups[task]] += 1.0;
          total_correct += p;
        }
        overall[w] = std::clamp(total_correct / (end - begin), kQualityFloor,
                                1.0 - kQualityFloor);
        for (int g = 0; g < num_groups; ++g) {
          const double estimate =
              (prior_strength_ * overall[w] + correct[g]) /
              (prior_strength_ + count[g]);
          quality[static_cast<size_t>(w) * num_groups + g] =
              std::clamp(estimate, kQualityFloor, 1.0 - kQualityFloor);
        }
      }
      for (int g = 0; g < num_groups; ++g) {
        const size_t wg = static_cast<size_t>(w) * num_groups + g;
        log_right[wg] = std::log(quality[wg]);
        log_wrong[wg] = std::log((1.0 - quality[wg]) / (l - 1));
      }
    });
  }});
  // E-step with topic-specific probabilities.
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    next = posterior;
    context.ParallelShards(n, [&](int t, int slot) {
      const int32_t begin = csr.task_offsets[t];
      const int32_t end = csr.task_offsets[t + 1];
      if (begin == end) return;
      std::vector<double>& belief = log_belief[slot];
      std::fill(belief.begin(), belief.end(), 0.0);
      const int g = groups[t];
      for (int32_t a = begin; a < end; ++a) {
        const size_t wg =
            static_cast<size_t>(csr.task_workers[a]) * num_groups + g;
        const double right = log_right[wg];
        const double wrong = log_wrong[wg];
        const int32_t label = csr.task_labels[a];
        for (int z = 0; z < l; ++z) {
          belief[z] += label == z ? right : wrong;
        }
      }
      util::SoftmaxInPlace(belief);
      next[t] = belief;
    });
    ClampGolden(dataset, options, next);
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool) {
                         const double change = MaxAbsDiff(posterior, next);
                         posterior = std::move(next);
                         return change;
                       }),
             &result);

  result.labels = ArgmaxLabels(posterior, rng);
  result.posterior = std::move(posterior);
  result.worker_quality = std::move(overall);
  return result;
}

}  // namespace crowdtruth::core
