// GLAD (Whitehill et al., NIPS'09; paper §4.1.1, §5.3(1) "Task Model").
//
// Extends ZC with a per-task difficulty: worker w answers task i correctly
// with probability sigmoid(alpha_w * beta_i), where alpha_w in R is the
// worker's ability and beta_i = exp(b_i) > 0 the task's easiness (the
// paper's 1/(1 + e^{-d_i q^w}) with d_i = beta_i, q^w = alpha_w). Wrong
// answers spread uniformly over the remaining l-1 choices.
//
// Inference is EM where the M-step runs gradient ascent on (alpha, b) with
// Gaussian priors — the source of GLAD's characteristic slowness in the
// paper's Table 6.
#ifndef CROWDTRUTH_CORE_METHODS_GLAD_H_
#define CROWDTRUTH_CORE_METHODS_GLAD_H_

#include "core/inference.h"

namespace crowdtruth::core {

class Glad : public CategoricalMethod {
 public:
  // `gradient_steps` per M-step and `learning_rate` control the inner
  // optimizer; defaults follow the reference implementation's ballpark.
  explicit Glad(int gradient_steps = 30, double learning_rate = 0.3)
      : gradient_steps_(gradient_steps), learning_rate_(learning_rate) {}

  std::string name() const override { return "GLAD"; }
  CategoricalResult Infer(const data::CategoricalDataset& dataset,
                          const InferenceOptions& options) const override;

 private:
  int gradient_steps_;
  double learning_rate_;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_GLAD_H_
