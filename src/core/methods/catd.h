// CATD (Li et al., PVLDB'14; paper §5.2(2)): confidence-aware truth
// discovery for long-tail data.
//
// Worker model: a reliability weight scaled by the chi-squared coefficient
// X^2(0.975, |T^w|) so that workers who answered many tasks get confident
// (larger) weights:
//     q^w = ChiSquaredQuantile(0.975, |T^w|) / sum_{i in T^w} d(v_i^w, v*_i)
// Truth update: weighted vote (categorical) or weighted mean (numeric).
// The two steps iterate until the truth assignment stabilizes.
#ifndef CROWDTRUTH_CORE_METHODS_CATD_H_
#define CROWDTRUTH_CORE_METHODS_CATD_H_

#include "core/inference.h"

namespace crowdtruth::core {

class CatdCategorical : public CategoricalMethod {
 public:
  std::string name() const override { return "CATD"; }
  CategoricalResult Infer(const data::CategoricalDataset& dataset,
                          const InferenceOptions& options) const override;
};

class CatdNumeric : public NumericMethod {
 public:
  std::string name() const override { return "CATD"; }
  NumericResult Infer(const data::NumericDataset& dataset,
                      const InferenceOptions& options) const override;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_CATD_H_
