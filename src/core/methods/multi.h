// Multi — The Multidimensional Wisdom of Crowds (Welinder et al., NIPS'10;
// paper §5.3(3)).
//
// Decision-making tasks only. Each task has a latent K-dimensional
// embedding x_i (latent topics); each worker has a direction u_w (diverse
// skills / inverse variance) and a bias tau_w. The worker answers the first
// choice with probability sigmoid(<u_w, x_i> - tau_w). MAP inference by
// alternating gradient ascent over {x_i}, {u_w}, {tau_w} with Gaussian
// priors; the inferred truth is the sign of the task embedding projected
// onto the mean worker direction (an unbiased "ideal worker").
#ifndef CROWDTRUTH_CORE_METHODS_MULTI_H_
#define CROWDTRUTH_CORE_METHODS_MULTI_H_

#include "core/inference.h"

namespace crowdtruth::core {

class Multi : public CategoricalMethod {
 public:
  Multi(int num_dimensions = 2, int gradient_steps = 15,
        double learning_rate = 0.1)
      : num_dimensions_(num_dimensions),
        gradient_steps_(gradient_steps),
        learning_rate_(learning_rate) {}

  std::string name() const override { return "Multi"; }
  // Requires dataset.num_choices() == 2.
  CategoricalResult Infer(const data::CategoricalDataset& dataset,
                          const InferenceOptions& options) const override;

 private:
  int num_dimensions_;
  int gradient_steps_;
  double learning_rate_;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_MULTI_H_
