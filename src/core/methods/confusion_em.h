// Shared EM engine over the confusion-matrix worker model, parameterized by
// Dirichlet pseudo-counts. D&S (no informative prior) and LFC (Beta/
// Dirichlet priors, Raykar et al.) are thin wrappers around this engine.
//
// Model: worker w has an l x l confusion matrix pi^w with
// pi^w_{j,k} = Pr(v^w = k | v* = j); tasks have a shared class prior p.
//   E-step:  mu_i(j) prop-to p_j * prod_{w in W_i} pi^w_{j, v_i^w}
//   M-step:  pi^w_{j,k} prop-to prior_{j,k} + sum_{i in T^w} mu_i(j) 1{v_i^w=k}
//            p_j prop-to prior_class + sum_i mu_i(j)
#ifndef CROWDTRUTH_CORE_METHODS_CONFUSION_EM_H_
#define CROWDTRUTH_CORE_METHODS_CONFUSION_EM_H_

#include "core/common.h"
#include "core/inference.h"

namespace crowdtruth::core::internal {

struct ConfusionEmConfig {
  // Dirichlet pseudo-counts added to each confusion-matrix cell; the
  // diagonal typically gets more mass (a prior belief that workers are
  // better than random).
  double prior_diag = 0.0;
  double prior_off = 0.0;
  // Tiny smoothing keeping estimates strictly positive even with zero
  // priors (D&S).
  double smoothing = 1e-6;
  // Pseudo-count for the class prior.
  double prior_class = 1e-6;
  // `method` label on the process-wide EM metrics; string literal only.
  const char* method_name = "ConfusionEM";
};

CategoricalResult RunConfusionEm(const data::CategoricalDataset& dataset,
                                 const InferenceOptions& options,
                                 const ConfusionEmConfig& config);

}  // namespace crowdtruth::core::internal

#endif  // CROWDTRUTH_CORE_METHODS_CONFUSION_EM_H_
