// Direct-computation baselines for numeric tasks (paper §5.1): Mean and
// Median of the collected answers per task. No task or worker model. The
// reported worker quality is the negated RMS deviation of the worker's
// answers from the aggregate (so that higher still means better).
#ifndef CROWDTRUTH_CORE_METHODS_BASELINES_NUMERIC_H_
#define CROWDTRUTH_CORE_METHODS_BASELINES_NUMERIC_H_

#include "core/inference.h"

namespace crowdtruth::core {

class MeanBaseline : public NumericMethod {
 public:
  std::string name() const override { return "Mean"; }
  NumericResult Infer(const data::NumericDataset& dataset,
                      const InferenceOptions& options) const override;
};

class MedianBaseline : public NumericMethod {
 public:
  std::string name() const override { return "Median"; }
  NumericResult Infer(const data::NumericDataset& dataset,
                      const InferenceOptions& options) const override;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_BASELINES_NUMERIC_H_
