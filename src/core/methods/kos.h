// KOS (Karger, Oh & Shah, NIPS'11; paper §5.3(1) "Optimization Function").
//
// Decision-making tasks only. Answers are spins A_{iw} in {+1, -1}
// (+1 = first choice). Iterative belief-propagation-style message passing:
//   task-to-worker:    x_{i->w} = sum_{w' in W_i \ w} A_{iw'} y_{w'->i}
//   worker-to-task:    y_{w->i} = sum_{i' in T^w \ i} A_{i'w} x_{i'->w}
// with y initialized from N(1, 1). The final estimate is
//   v*_i = sign( sum_{w in W_i} A_{iw} y_{w->i} ).
// Messages are renormalized each round to avoid overflow.
#ifndef CROWDTRUTH_CORE_METHODS_KOS_H_
#define CROWDTRUTH_CORE_METHODS_KOS_H_

#include "core/inference.h"

namespace crowdtruth::core {

class Kos : public CategoricalMethod {
 public:
  explicit Kos(int message_rounds = 10) : message_rounds_(message_rounds) {}

  std::string name() const override { return "KOS"; }
  // Requires dataset.num_choices() == 2.
  CategoricalResult Infer(const data::CategoricalDataset& dataset,
                          const InferenceOptions& options) const override;

 private:
  int message_rounds_;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_KOS_H_
