// PM (Li et al., SIGMOD'14 / Aydin et al., AAAI'14; paper §5.2(1)).
//
// Optimization method minimizing
//     f({q^w}, {v*_i}) = sum_w q^w * sum_{i in T^w} d(v_i^w, v*_i)
// by coordinate descent (the two steps in the paper's §3 running example):
//   Step 1:  v*_i = argmax_v sum_{w in W_i} q^w * 1{v = v_i^w}
//            (weighted mean for numeric tasks)
//   Step 2:  q^w = -log( err_w / max_w' err_w' )
// where err_w is the worker's accumulated distance to the current truth
// (0/1 mismatch count for categorical, squared error for numeric). A small
// epsilon keeps the log finite for perfect workers, matching the paper's
// converged example values (q^{w_3} = 16.09).
#ifndef CROWDTRUTH_CORE_METHODS_PM_H_
#define CROWDTRUTH_CORE_METHODS_PM_H_

#include "core/inference.h"

namespace crowdtruth::core {

class PmCategorical : public CategoricalMethod {
 public:
  std::string name() const override { return "PM"; }
  CategoricalResult Infer(const data::CategoricalDataset& dataset,
                          const InferenceOptions& options) const override;
};

class PmNumeric : public NumericMethod {
 public:
  std::string name() const override { return "PM"; }
  NumericResult Infer(const data::NumericDataset& dataset,
                      const InferenceOptions& options) const override;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_PM_H_
