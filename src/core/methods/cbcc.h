// CBCC — Community-based Bayesian Classifier Combination (Venanzi et al.,
// WWW'14; paper §5.3(2) "Optimization Function").
//
// Extends BCC with worker communities: each worker belongs to one of M
// communities, each community has a representative confusion matrix, and
// workers in the same community share it. Inference is Gibbs sampling over
// (task truths, community matrices, community mixing weights, worker
// community assignments).
#ifndef CROWDTRUTH_CORE_METHODS_CBCC_H_
#define CROWDTRUTH_CORE_METHODS_CBCC_H_

#include "core/inference.h"

namespace crowdtruth::core {

class Cbcc : public CategoricalMethod {
 public:
  Cbcc(int num_communities = 3, int burn_in = 20, int samples = 60,
       double prior_diag = 2.0, double prior_off = 1.0)
      : num_communities_(num_communities),
        burn_in_(burn_in),
        samples_(samples),
        prior_diag_(prior_diag),
        prior_off_(prior_off) {}

  std::string name() const override { return "CBCC"; }
  CategoricalResult Infer(const data::CategoricalDataset& dataset,
                          const InferenceOptions& options) const override;

 private:
  int num_communities_;
  int burn_in_;
  int samples_;
  double prior_diag_;
  double prior_off_;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_CBCC_H_
