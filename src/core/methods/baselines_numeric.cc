#include "core/methods/baselines_numeric.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/common.h"

namespace crowdtruth::core {
namespace {

std::vector<double> WorkerNegativeRmsDeviation(
    const data::NumericDataset& dataset, const std::vector<double>& values) {
  const data::NumericCsr& csr = dataset.csr();
  std::vector<double> quality(dataset.num_workers(), 0.0);
  for (data::WorkerId w = 0; w < dataset.num_workers(); ++w) {
    const int32_t begin = csr.worker_offsets[w];
    const int32_t end = csr.worker_offsets[w + 1];
    if (begin == end) continue;
    double sum_sq = 0.0;
    for (int32_t a = begin; a < end; ++a) {
      const double err = csr.worker_values[a] - values[csr.worker_tasks[a]];
      sum_sq += err * err;
    }
    quality[w] = -std::sqrt(sum_sq / (end - begin));
  }
  return quality;
}

}  // namespace

NumericResult MeanBaseline::Infer(const data::NumericDataset& dataset,
                                  const InferenceOptions& options) const {
  NumericResult result;
  result.values = MeanValues(dataset, options);
  result.worker_quality = WorkerNegativeRmsDeviation(dataset, result.values);
  result.iterations = 1;
  result.converged = true;
  return result;
}

NumericResult MedianBaseline::Infer(const data::NumericDataset& dataset,
                                    const InferenceOptions& options) const {
  NumericResult result;
  const data::NumericCsr& csr = dataset.csr();
  result.values.assign(dataset.num_tasks(), 0.0);
  std::vector<double> buffer;
  for (data::TaskId t = 0; t < dataset.num_tasks(); ++t) {
    const int32_t begin = csr.task_offsets[t];
    const int32_t end = csr.task_offsets[t + 1];
    if (begin == end) continue;
    buffer.assign(csr.task_values.begin() + begin,
                  csr.task_values.begin() + end);
    std::sort(buffer.begin(), buffer.end());
    const size_t mid = buffer.size() / 2;
    result.values[t] = buffer.size() % 2 == 1
                           ? buffer[mid]
                           : 0.5 * (buffer[mid - 1] + buffer[mid]);
  }
  ClampGoldenValues(dataset, options, result.values);
  result.worker_quality = WorkerNegativeRmsDeviation(dataset, result.values);
  result.iterations = 1;
  result.converged = true;
  return result;
}

}  // namespace crowdtruth::core
