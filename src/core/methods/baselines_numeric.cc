#include "core/methods/baselines_numeric.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/common.h"

namespace crowdtruth::core {
namespace {

std::vector<double> WorkerNegativeRmsDeviation(
    const data::NumericDataset& dataset, const std::vector<double>& values) {
  std::vector<double> quality(dataset.num_workers(), 0.0);
  for (data::WorkerId w = 0; w < dataset.num_workers(); ++w) {
    const auto& votes = dataset.AnswersByWorker(w);
    if (votes.empty()) continue;
    double sum_sq = 0.0;
    for (const data::NumericWorkerVote& vote : votes) {
      const double err = vote.value - values[vote.task];
      sum_sq += err * err;
    }
    quality[w] = -std::sqrt(sum_sq / votes.size());
  }
  return quality;
}

}  // namespace

NumericResult MeanBaseline::Infer(const data::NumericDataset& dataset,
                                  const InferenceOptions& options) const {
  NumericResult result;
  result.values = MeanValues(dataset, options);
  result.worker_quality = WorkerNegativeRmsDeviation(dataset, result.values);
  result.iterations = 1;
  result.converged = true;
  return result;
}

NumericResult MedianBaseline::Infer(const data::NumericDataset& dataset,
                                    const InferenceOptions& options) const {
  NumericResult result;
  result.values.assign(dataset.num_tasks(), 0.0);
  std::vector<double> buffer;
  for (data::TaskId t = 0; t < dataset.num_tasks(); ++t) {
    const auto& votes = dataset.AnswersForTask(t);
    if (votes.empty()) continue;
    buffer.clear();
    for (const data::NumericTaskVote& vote : votes) {
      buffer.push_back(vote.value);
    }
    std::sort(buffer.begin(), buffer.end());
    const size_t mid = buffer.size() / 2;
    result.values[t] = buffer.size() % 2 == 1
                           ? buffer[mid]
                           : 0.5 * (buffer[mid - 1] + buffer[mid]);
  }
  ClampGoldenValues(dataset, options, result.values);
  result.worker_quality = WorkerNegativeRmsDeviation(dataset, result.values);
  result.iterations = 1;
  result.converged = true;
  return result;
}

}  // namespace crowdtruth::core
