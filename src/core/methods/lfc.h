// LFC — Learning From Crowds (Raykar et al., JMLR'10; paper §5.3(2),
// "Priors"): D&S with Beta/Dirichlet priors on the confusion-matrix rows,
// i.e. MAP instead of maximum likelihood. The priors act as diagonal-heavy
// pseudo-counts, which stabilizes estimates for workers with few answers.
#ifndef CROWDTRUTH_CORE_METHODS_LFC_H_
#define CROWDTRUTH_CORE_METHODS_LFC_H_

#include "core/inference.h"

namespace crowdtruth::core {

class Lfc : public CategoricalMethod {
 public:
  // `prior_diag` / `prior_off` are the Dirichlet pseudo-counts alpha^w_{j,k}
  // for diagonal and off-diagonal cells.
  explicit Lfc(double prior_diag = 2.0, double prior_off = 1.0)
      : prior_diag_(prior_diag), prior_off_(prior_off) {}

  std::string name() const override { return "LFC"; }
  CategoricalResult Infer(const data::CategoricalDataset& dataset,
                          const InferenceOptions& options) const override;

 private:
  double prior_diag_;
  double prior_off_;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_LFC_H_
