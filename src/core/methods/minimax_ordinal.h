// Minimax conditional entropy for ordinal labels (Zhou, Liu, Platt & Meek,
// ICML'14 — the paper's reference [62]; implemented here as an extension
// beyond the 17 surveyed methods).
//
// For ordinal choice sets (0 < 1 < ... < l-1, e.g. relevance grades or
// adult-content ratings), the free l x l worker matrix of Minimax is
// replaced by an ordinal-structured one with two parameters per worker:
//   score_w(j, k) = -alpha_w * |j - k| + beta_w * 1{j == k}
// i.e. alpha_w is the worker's distance sensitivity (how sharply errors
// concentrate near the truth) and beta_w the exactness bonus. Everything
// else (per-task tau, label updates, class-prior anchor) follows Minimax.
// With l^2 parameters reduced to 2, estimates are far more stable on
// ordinal data where confusions are adjacent by nature.
#ifndef CROWDTRUTH_CORE_METHODS_MINIMAX_ORDINAL_H_
#define CROWDTRUTH_CORE_METHODS_MINIMAX_ORDINAL_H_

#include "core/inference.h"

namespace crowdtruth::core {

class MinimaxOrdinal : public CategoricalMethod {
 public:
  MinimaxOrdinal(int gradient_steps = 25, double learning_rate = 0.5,
                 double regularization_worker = 0.01,
                 double regularization_tau = 1.0)
      : gradient_steps_(gradient_steps),
        learning_rate_(learning_rate),
        regularization_worker_(regularization_worker),
        regularization_tau_(regularization_tau) {}

  std::string name() const override { return "Minimax-Ordinal"; }
  CategoricalResult Infer(const data::CategoricalDataset& dataset,
                          const InferenceOptions& options) const override;

 private:
  int gradient_steps_;
  double learning_rate_;
  double regularization_worker_;
  double regularization_tau_;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_MINIMAX_ORDINAL_H_
