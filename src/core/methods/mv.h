// Majority Voting (paper §5.1): the truth is the choice given by the most
// workers; ties are broken uniformly at random (seeded). No task or worker
// model. The reported worker quality is each worker's agreement rate with
// the majority outcome.
#ifndef CROWDTRUTH_CORE_METHODS_MV_H_
#define CROWDTRUTH_CORE_METHODS_MV_H_

#include "core/inference.h"

namespace crowdtruth::core {

class MajorityVoting : public CategoricalMethod {
 public:
  std::string name() const override { return "MV"; }
  CategoricalResult Infer(const data::CategoricalDataset& dataset,
                          const InferenceOptions& options) const override;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_MV_H_
