// VI-BP (Liu, Peng & Ihler, NIPS'12; paper §5.3(1) "Optimization
// Function"). Bayesian estimation of Pr(v*_i | V) (Eq. 2) approximated
// with belief propagation on the bipartite worker/task factor graph — the
// generalization of KOS with a Beta prior on worker reliability.
//
// Decision-making tasks only. Each worker factor integrates its reliability
// q^w out under a Beta(alpha, beta) prior whose posterior pseudo-counts are
// the soft correct/incorrect counts implied by incoming task messages.
#ifndef CROWDTRUTH_CORE_METHODS_VI_BP_H_
#define CROWDTRUTH_CORE_METHODS_VI_BP_H_

#include "core/inference.h"

namespace crowdtruth::core {

class ViBp : public CategoricalMethod {
 public:
  explicit ViBp(double prior_alpha = 2.0, double prior_beta = 1.0)
      : prior_alpha_(prior_alpha), prior_beta_(prior_beta) {}

  std::string name() const override { return "VI-BP"; }
  // Requires dataset.num_choices() == 2.
  CategoricalResult Infer(const data::CategoricalDataset& dataset,
                          const InferenceOptions& options) const override;

 private:
  double prior_alpha_;
  double prior_beta_;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_VI_BP_H_
