#include "core/methods/glad.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/common.h"
#include "core/trace.h"
#include "util/rng.h"
#include "util/special_functions.h"

namespace crowdtruth::core {
namespace {

// Keeps sigmoid outputs away from {0, 1} in log computations.
double SafeLog(double x) { return std::log(std::max(x, 1e-12)); }

}  // namespace

CategoricalResult Glad::Infer(const data::CategoricalDataset& dataset,
                              const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  util::Rng rng(options.seed);

  // alpha: worker ability (prior N(1,1)); b: log task easiness (prior
  // N(1,1)), beta = exp(b).
  std::vector<double> alpha(num_workers, 1.0);
  std::vector<double> b(n, 1.0);
  if (!options.initial_worker_quality.empty()) {
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      const double q =
          std::clamp(options.initial_worker_quality[w], 0.05, 0.95);
      alpha[w] = std::log(q / (1.0 - q));
    }
  }

  Posterior posterior = InitialPosterior(dataset, options);

  // Per-answer normalization keeps the gradient magnitude independent of
  // how many tasks a worker answered, so one learning rate fits both the
  // head and the tail of the worker-activity distribution.
  std::vector<double> worker_scale(num_workers, 1.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    worker_scale[w] =
        1.0 / std::max<size_t>(dataset.AnswersByWorker(w).size(), 1);
  }
  std::vector<double> task_scale(n, 1.0);
  for (data::TaskId t = 0; t < n; ++t) {
    task_scale[t] = 1.0 / std::max<size_t>(dataset.AnswersForTask(t).size(), 1);
  }

  CategoricalResult result;
  std::vector<double> log_belief(l);
  std::vector<double> grad_alpha(num_workers);
  std::vector<double> grad_b(n);
  IterationTracer tracer(options.trace);
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    tracer.BeginIteration();
    // M-step: gradient ascent on the expected complete log-likelihood.
    for (int step = 0; step < gradient_steps_; ++step) {
      // Gaussian priors contribute (mean - value) to each gradient.
      for (data::WorkerId w = 0; w < num_workers; ++w) {
        grad_alpha[w] = 0.2 * (1.0 - alpha[w]);
      }
      for (data::TaskId t = 0; t < n; ++t) grad_b[t] = 0.2 * (1.0 - b[t]);
      for (data::TaskId t = 0; t < n; ++t) {
        const double beta = std::exp(b[t]);
        for (const data::TaskVote& vote : dataset.AnswersForTask(t)) {
          const double p_correct = posterior[t][vote.label];
          const double sigma = util::Sigmoid(alpha[vote.worker] * beta);
          // d/d(alpha*beta) of the expected log-likelihood per answer.
          const double core = p_correct - sigma;
          grad_alpha[vote.worker] += core * beta * worker_scale[vote.worker];
          grad_b[t] += core * alpha[vote.worker] * beta * task_scale[t];
        }
      }
      for (data::WorkerId w = 0; w < num_workers; ++w) {
        alpha[w] = std::clamp(alpha[w] + learning_rate_ * grad_alpha[w],
                              -8.0, 8.0);
      }
      for (data::TaskId t = 0; t < n; ++t) {
        b[t] = std::clamp(b[t] + learning_rate_ * grad_b[t], -4.0, 4.0);
      }
    }
    tracer.EndPhase(TracePhase::kQualityStep);

    // E-step: recompute the belief.
    Posterior next = posterior;
    for (data::TaskId t = 0; t < n; ++t) {
      const auto& votes = dataset.AnswersForTask(t);
      if (votes.empty()) continue;
      const double beta = std::exp(b[t]);
      std::fill(log_belief.begin(), log_belief.end(), 0.0);
      for (const data::TaskVote& vote : votes) {
        const double sigma = util::Sigmoid(alpha[vote.worker] * beta);
        const double log_right = SafeLog(sigma);
        const double log_wrong = SafeLog((1.0 - sigma) / (l - 1));
        for (int z = 0; z < l; ++z) {
          log_belief[z] += vote.label == z ? log_right : log_wrong;
        }
      }
      util::SoftmaxInPlace(log_belief);
      next[t] = log_belief;
    }
    ClampGolden(dataset, options, next);

    const double change = MaxAbsDiff(posterior, next);
    tracer.EndPhase(TracePhase::kTruthStep);
    posterior = std::move(next);
    result.convergence_trace.push_back(change);
    result.iterations = iteration + 1;
    tracer.EndIteration(result.iterations, change);
    if (change < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.labels = ArgmaxLabels(posterior, rng);
  result.posterior = std::move(posterior);
  result.worker_quality = std::move(alpha);
  result.task_easiness.resize(n);
  for (data::TaskId t = 0; t < n; ++t) {
    result.task_easiness[t] = std::exp(b[t]);
  }
  return result;
}

}  // namespace crowdtruth::core
