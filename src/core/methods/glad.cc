#include "core/methods/glad.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/common.h"
#include "core/em_loop.h"
#include "util/rng.h"
#include "util/safe_math.h"
#include "util/special_functions.h"

namespace crowdtruth::core {

CategoricalResult Glad::Infer(const data::CategoricalDataset& dataset,
                              const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  util::Rng rng(options.seed);

  // alpha: worker ability (prior N(1,1)); b: log task easiness (prior
  // N(1,1)), beta = exp(b).
  std::vector<double> alpha(num_workers, 1.0);
  std::vector<double> b(n, 1.0);
  if (!options.initial_worker_quality.empty()) {
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      const double q = util::ClampProb(options.initial_worker_quality[w], 0.05);
      alpha[w] = std::log(q / (1.0 - q));
    }
  }

  Posterior posterior = InitialPosterior(dataset, options);

  // Per-answer normalization keeps the gradient magnitude independent of
  // how many tasks a worker answered, so one learning rate fits both the
  // head and the tail of the worker-activity distribution.
  std::vector<double> worker_scale(num_workers, 1.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    worker_scale[w] =
        1.0 / std::max<size_t>(dataset.AnswersByWorker(w).size(), 1);
  }
  std::vector<double> task_scale(n, 1.0);
  for (data::TaskId t = 0; t < n; ++t) {
    task_scale[t] = 1.0 / std::max<size_t>(dataset.AnswersForTask(t).size(), 1);
  }

  const EmDriver driver = EmDriver::FromOptions(options, "GLAD");
  std::vector<std::vector<double>> log_belief(driver.num_threads,
                                              std::vector<double>(l));
  std::vector<double> grad_alpha(num_workers);
  std::vector<double> grad_b(n);
  Posterior next;

  std::vector<EmStep> steps;
  // M-step: gradient ascent on the expected complete log-likelihood. Both
  // gradients are sharded by the parameter they update — grad_alpha[w]
  // reduces over the worker's own answers, grad_b[t] over the task's — so
  // each shard owns its accumulator and the reduction order per parameter
  // is fixed regardless of thread count.
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    for (int step = 0; step < gradient_steps_; ++step) {
      context.ParallelShards(num_workers, [&](int w, int) {
        // Gaussian prior contributes (mean - value) to the gradient.
        double grad = 0.2 * (1.0 - alpha[w]);
        for (const data::WorkerVote& vote : dataset.AnswersByWorker(w)) {
          const double beta = std::exp(b[vote.task]);
          const double p_correct = posterior[vote.task][vote.label];
          const double sigma = util::Sigmoid(alpha[w] * beta);
          // d/d(alpha*beta) of the expected log-likelihood per answer.
          grad += (p_correct - sigma) * beta * worker_scale[w];
        }
        grad_alpha[w] = grad;
      });
      context.ParallelShards(n, [&](int t, int) {
        double grad = 0.2 * (1.0 - b[t]);
        const double beta = std::exp(b[t]);
        for (const data::TaskVote& vote : dataset.AnswersForTask(t)) {
          const double p_correct = posterior[t][vote.label];
          const double sigma = util::Sigmoid(alpha[vote.worker] * beta);
          grad += (p_correct - sigma) * alpha[vote.worker] * beta *
                  task_scale[t];
        }
        grad_b[t] = grad;
      });
      for (data::WorkerId w = 0; w < num_workers; ++w) {
        alpha[w] = std::clamp(alpha[w] + learning_rate_ * grad_alpha[w],
                              -8.0, 8.0);
      }
      for (data::TaskId t = 0; t < n; ++t) {
        b[t] = std::clamp(b[t] + learning_rate_ * grad_b[t], -4.0, 4.0);
      }
    }
  }});
  // E-step: recompute the belief.
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    next = posterior;
    context.ParallelShards(n, [&](int t, int slot) {
      const auto& votes = dataset.AnswersForTask(t);
      if (votes.empty()) return;
      const double beta = std::exp(b[t]);
      std::vector<double>& belief = log_belief[slot];
      std::fill(belief.begin(), belief.end(), 0.0);
      for (const data::TaskVote& vote : votes) {
        // Sigmoid saturates at the clamped |alpha * beta| extremes; SafeLog
        // keeps the log-likelihood finite there.
        const double sigma = util::Sigmoid(alpha[vote.worker] * beta);
        const double log_right = util::SafeLog(sigma);
        const double log_wrong = util::SafeLog((1.0 - sigma) / (l - 1));
        for (int z = 0; z < l; ++z) {
          belief[z] += vote.label == z ? log_right : log_wrong;
        }
      }
      util::SoftmaxInPlace(belief);
      next[t] = belief;
    });
    ClampGolden(dataset, options, next);
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool) {
                         const double change = MaxAbsDiff(posterior, next);
                         posterior = std::move(next);
                         return change;
                       }),
             &result);

  result.labels = ArgmaxLabels(posterior, rng);
  result.posterior = std::move(posterior);
  result.worker_quality = std::move(alpha);
  result.task_easiness.resize(n);
  for (data::TaskId t = 0; t < n; ++t) {
    result.task_easiness[t] = std::exp(b[t]);
  }
  return result;
}

}  // namespace crowdtruth::core
