#include "core/methods/glad.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/common.h"
#include "core/em_loop.h"
#include "util/rng.h"
#include "util/safe_math.h"
#include "util/special_functions.h"

namespace crowdtruth::core {

CategoricalResult Glad::Infer(const data::CategoricalDataset& dataset,
                              const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  const data::CategoricalCsr& csr = dataset.csr();
  util::Rng rng(options.seed);

  // alpha: worker ability (prior N(1,1)); b: log task easiness (prior
  // N(1,1)), beta = exp(b).
  std::vector<double> alpha(num_workers, 1.0);
  std::vector<double> b(n, 1.0);
  if (!options.initial_worker_quality.empty()) {
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      const double q = util::ClampProb(options.initial_worker_quality[w], 0.05);
      alpha[w] = std::log(q / (1.0 - q));
    }
  }

  // Flat n*l row-major belief array (see docs/performance.md): both
  // gradient loops read the posterior once per answer, and one contiguous
  // block costs a single indirection per read. Same arithmetic per row —
  // same bits.
  std::vector<double> posterior(static_cast<size_t>(n) * l);
  {
    const Posterior initial = InitialPosterior(dataset, options);
    for (data::TaskId t = 0; t < n; ++t) {
      std::copy(initial[t].begin(), initial[t].end(),
                posterior.begin() + static_cast<size_t>(t) * l);
    }
  }

  // Per-answer normalization keeps the gradient magnitude independent of
  // how many tasks a worker answered, so one learning rate fits both the
  // head and the tail of the worker-activity distribution.
  std::vector<double> worker_scale(num_workers, 1.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    worker_scale[w] =
        1.0 / std::max<size_t>(dataset.AnswersByWorker(w).size(), 1);
  }
  std::vector<double> task_scale(n, 1.0);
  for (data::TaskId t = 0; t < n; ++t) {
    task_scale[t] = 1.0 / std::max<size_t>(dataset.AnswersForTask(t).size(), 1);
  }

  const EmDriver driver = EmDriver::FromOptions(options, "GLAD");
  std::vector<std::vector<double>> log_belief(driver.num_threads,
                                              std::vector<double>(l));
  std::vector<double> grad_alpha(num_workers);
  std::vector<double> grad_b(n);
  // Per-gradient-step caches. Both gradients evaluate exp(b[t]) and
  // Sigmoid(alpha[w] * beta[t]) for every answer; computing each once per
  // step (task-major) and reading the worker-major copies through the CSR
  // cross-link drops the per-step transcendental count from ~4|V| to
  // |V| + n. Same inputs and expressions, so every double is bitwise
  // unchanged.
  std::vector<double> beta_cache(n);
  std::vector<double> sigma_cache(csr.num_answers());
  std::vector<double> next;

  std::vector<EmStep> steps;
  // M-step: gradient ascent on the expected complete log-likelihood. Both
  // gradients are sharded by the parameter they update — grad_alpha[w]
  // reduces over the worker's own answers, grad_b[t] over the task's — so
  // each shard owns its accumulator and the reduction order per parameter
  // is fixed regardless of thread count.
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    for (int step = 0; step < gradient_steps_; ++step) {
      context.ParallelShards(n, [&](int t, int) {
        const double beta = std::exp(b[t]);
        beta_cache[t] = beta;
        for (int32_t a = csr.task_offsets[t]; a < csr.task_offsets[t + 1];
             ++a) {
          sigma_cache[a] = util::Sigmoid(alpha[csr.task_workers[a]] * beta);
        }
      });
      context.ParallelShards(num_workers, [&](int w, int) {
        // Gaussian prior contributes (mean - value) to the gradient.
        double grad = 0.2 * (1.0 - alpha[w]);
        for (int32_t a = csr.worker_offsets[w]; a < csr.worker_offsets[w + 1];
             ++a) {
          const data::TaskId t = csr.worker_tasks[a];
          const double beta = beta_cache[t];
          const double p_correct = posterior[t * l + csr.worker_labels[a]];
          const double sigma = sigma_cache[csr.worker_to_task[a]];
          // d/d(alpha*beta) of the expected log-likelihood per answer.
          grad += (p_correct - sigma) * beta * worker_scale[w];
        }
        grad_alpha[w] = grad;
      });
      context.ParallelShards(n, [&](int t, int) {
        double grad = 0.2 * (1.0 - b[t]);
        const double beta = beta_cache[t];
        for (int32_t a = csr.task_offsets[t]; a < csr.task_offsets[t + 1];
             ++a) {
          const data::WorkerId w = csr.task_workers[a];
          const double p_correct = posterior[t * l + csr.task_labels[a]];
          grad += (p_correct - sigma_cache[a]) * alpha[w] * beta *
                  task_scale[t];
        }
        grad_b[t] = grad;
      });
      for (data::WorkerId w = 0; w < num_workers; ++w) {
        alpha[w] = std::clamp(alpha[w] + learning_rate_ * grad_alpha[w],
                              -8.0, 8.0);
      }
      for (data::TaskId t = 0; t < n; ++t) {
        b[t] = std::clamp(b[t] + learning_rate_ * grad_b[t], -4.0, 4.0);
      }
    }
  }});
  // E-step: recompute the belief.
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    next = posterior;  // Answerless tasks keep their belief.
    context.ParallelShards(n, [&](int t, int slot) {
      const int32_t begin = csr.task_offsets[t];
      const int32_t end = csr.task_offsets[t + 1];
      if (begin == end) return;
      const double beta = std::exp(b[t]);
      std::vector<double>& belief = log_belief[slot];
      std::fill(belief.begin(), belief.end(), 0.0);
      for (int32_t a = begin; a < end; ++a) {
        // Sigmoid saturates at the clamped |alpha * beta| extremes; SafeLog
        // keeps the log-likelihood finite there.
        const double sigma = util::Sigmoid(alpha[csr.task_workers[a]] * beta);
        const double log_right = util::SafeLog(sigma);
        const double log_wrong = util::SafeLog((1.0 - sigma) / (l - 1));
        const int32_t label = csr.task_labels[a];
        for (int z = 0; z < l; ++z) {
          belief[z] += label == z ? log_right : log_wrong;
        }
      }
      util::SoftmaxInPlace(belief);
      std::copy(belief.begin(), belief.end(),
                next.begin() + static_cast<size_t>(t) * l);
    });
    if (HasGoldenLabels(dataset, options)) {
      for (data::TaskId t = 0; t < n; ++t) {
        const data::LabelId g = options.golden_labels[t];
        if (g == data::kNoTruth) continue;
        std::fill(next.begin() + static_cast<size_t>(t) * l,
                  next.begin() + static_cast<size_t>(t + 1) * l, 0.0);
        next[static_cast<size_t>(t) * l + g] = 1.0;
      }
    }
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool) {
                         double change = 0.0;
                         for (size_t i = 0; i < posterior.size(); ++i) {
                           change = std::max(change,
                                             std::fabs(posterior[i] - next[i]));
                         }
                         posterior.swap(next);
                         return change;
                       }),
             &result);

  Posterior posterior_rows(n, std::vector<double>(l));
  for (data::TaskId t = 0; t < n; ++t) {
    std::copy(posterior.begin() + static_cast<size_t>(t) * l,
              posterior.begin() + static_cast<size_t>(t + 1) * l,
              posterior_rows[t].begin());
  }
  result.labels = ArgmaxLabels(posterior_rows, rng);
  result.posterior = std::move(posterior_rows);
  result.worker_quality = std::move(alpha);
  result.task_easiness.resize(n);
  for (data::TaskId t = 0; t < n; ++t) {
    result.task_easiness[t] = std::exp(b[t]);
  }
  return result;
}

}  // namespace crowdtruth::core
