#include "core/methods/robust_numeric.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/common.h"
#include "core/em_loop.h"

namespace crowdtruth::core {
namespace {

// Tukey bisquare weight for a standardized residual r: (1 - (r/c)^2)^2
// inside the cutoff, exactly zero beyond it (redescending influence).
double BisquareWeight(double standardized_residual, double c) {
  const double ratio = standardized_residual / c;
  if (std::fabs(ratio) >= 1.0) return 0.0;
  const double core = 1.0 - ratio * ratio;
  return core * core;
}

// Bisquare loss rho(r): the objective the IRLS minimizes; saturates at
// c^2/6 beyond the cutoff.
double BisquareLoss(double standardized_residual, double c) {
  const double ratio = standardized_residual / c;
  const double cap = c * c / 6.0;
  if (std::fabs(ratio) >= 1.0) return cap;
  const double core = 1.0 - ratio * ratio;
  return cap * (1.0 - core * core * core);
}

// MAD-based robust scale over a buffer of absolute residuals; sorts the
// buffer in place.
double MadSigma(std::vector<double>& abs_residuals) {
  std::sort(abs_residuals.begin(), abs_residuals.end());
  const size_t mid = abs_residuals.size() / 2;
  const double mad = abs_residuals.size() % 2 == 1
                         ? abs_residuals[mid]
                         : 0.5 * (abs_residuals[mid - 1] +
                                  abs_residuals[mid]);
  return 1.4826 * mad;
}

}  // namespace

NumericResult RobustNumeric::Infer(const data::NumericDataset& dataset,
                                   const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int num_workers = dataset.num_workers();
  const data::NumericCsr& csr = dataset.csr();

  // Median init: already outlier-safe.
  std::vector<double> values(n, 0.0);
  {
    std::vector<double> buffer;
    for (data::TaskId t = 0; t < n; ++t) {
      const int32_t begin = csr.task_offsets[t];
      const int32_t end = csr.task_offsets[t + 1];
      if (begin == end) continue;
      buffer.assign(csr.task_values.begin() + begin,
                    csr.task_values.begin() + end);
      std::sort(buffer.begin(), buffer.end());
      const size_t mid = buffer.size() / 2;
      values[t] = buffer.size() % 2 == 1
                      ? buffer[mid]
                      : 0.5 * (buffer[mid - 1] + buffer[mid]);
    }
    ClampGoldenValues(dataset, options, values);
  }

  std::vector<double> variance(num_workers, 1.0);
  if (!options.initial_worker_quality.empty()) {
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      const double rmse = std::max(options.initial_worker_quality[w], 1e-3);
      variance[w] = rmse * rmse;
    }
  }

  EmDriver driver = EmDriver::FromOptions(options, "Robust");
  driver.min_iterations = 2;

  std::vector<double> next(n, 0.0);
  std::vector<double> sigma_cache(num_workers, 1.0);
  std::vector<std::vector<double>> residual_scratch(driver.num_threads);

  std::vector<EmStep> steps;
  // Worker-scale step: MAD-based (median absolute residual x 1.4826),
  // which stays anchored to the inlier noise even under heavy per-answer
  // contamination — a Huber-weighted variance would inflate and let
  // outliers back in through the standardization.
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    // Global robust scale: floors the per-worker scales so that a worker
    // whose few answers happen to sit on the estimate cannot acquire
    // unbounded weight.
    std::vector<double>& all_residuals = residual_scratch[0];
    all_residuals.clear();
    for (int32_t a = 0; a < csr.num_answers(); ++a) {
      all_residuals.push_back(
          std::fabs(csr.worker_values[a] - values[csr.worker_tasks[a]]));
    }
    const double global_sigma =
        all_residuals.empty() ? 1.0 : std::max(MadSigma(all_residuals), 1e-6);
    const double variance_floor =
        0.25 * global_sigma * global_sigma;  // sigma_w >= global_sigma / 2.
    context.ParallelShards(num_workers, [&](int w, int slot) {
      const int32_t begin = csr.worker_offsets[w];
      const int32_t end = csr.worker_offsets[w + 1];
      if (begin == end) return;
      std::vector<double>& abs_residuals = residual_scratch[slot];
      abs_residuals.clear();
      for (int32_t a = begin; a < end; ++a) {
        abs_residuals.push_back(
            std::fabs(csr.worker_values[a] - values[csr.worker_tasks[a]]));
      }
      const double sigma = MadSigma(abs_residuals);
      const double count = static_cast<double>(end - begin);
      variance[w] = std::max(
          (prior_b_ + count * sigma * sigma) / (prior_a_ + count),
          variance_floor);
    });
  }});
  // Truth step: bisquare IRLS. The objective is non-convex, so iterate
  // from two starts — the previous (median-anchored) estimate, which is
  // right when outliers are answer-level, and the precision-weighted
  // mean, which is right when a task is dominated by answers from
  // high-variance (garbage) workers — and keep the lower-loss fixed
  // point.
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    // Per-worker scales are fixed for the whole truth step; hoisting the
    // sqrt out of the IRLS inner loops (2 starts x 5 refines + 2 loss
    // evaluations per task) changes no bits — same sqrt inputs.
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      sigma_cache[w] = std::max(std::sqrt(variance[w]), 1e-9);
    }
    context.ParallelShards(n, [&](int t, int) {
      const int32_t begin = csr.task_offsets[t];
      const int32_t end = csr.task_offsets[t + 1];
      if (begin == end) {
        next[t] = 0.0;
        return;
      }

      double precision_mean = 0.0;
      {
        double weighted_sum = 0.0;
        double weight_total = 0.0;
        for (int32_t a = begin; a < end; ++a) {
          const double weight =
              1.0 / std::max(variance[csr.task_workers[a]], 1e-9);
          weighted_sum += weight * csr.task_values[a];
          weight_total += weight;
        }
        precision_mean = weighted_sum / weight_total;
      }

      auto refine = [&](double estimate) {
        for (int inner = 0; inner < 5; ++inner) {
          double weighted_sum = 0.0;
          double weight_total = 0.0;
          for (int32_t a = begin; a < end; ++a) {
            const double sigma = sigma_cache[csr.task_workers[a]];
            const double value = csr.task_values[a];
            const double standardized = (value - estimate) / sigma;
            const double weight =
                BisquareWeight(standardized, tuning_c_) / (sigma * sigma);
            weighted_sum += weight * value;
            weight_total += weight;
          }
          if (weight_total <= 0.0) break;  // Everything rejected: stop.
          estimate = weighted_sum / weight_total;
        }
        return estimate;
      };
      auto loss = [&](double estimate) {
        double total = 0.0;
        for (int32_t a = begin; a < end; ++a) {
          const double sigma = sigma_cache[csr.task_workers[a]];
          total += BisquareLoss((csr.task_values[a] - estimate) / sigma,
                                tuning_c_);
        }
        return total;
      };
      const double from_previous = refine(values[t]);
      const double from_precision = refine(precision_mean);
      next[t] = loss(from_precision) < loss(from_previous) ? from_precision
                                                           : from_previous;
    });
    ClampGoldenValues(dataset, options, next);
  }});

  NumericResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool) {
                         double change = 0.0;
                         for (data::TaskId t = 0; t < n; ++t) {
                           change =
                               std::max(change, std::fabs(next[t] - values[t]));
                         }
                         values = next;
                         return change;
                       }),
             &result);

  result.values = std::move(values);
  result.worker_quality.assign(num_workers, 0.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    result.worker_quality[w] = -std::sqrt(variance[w]);
  }
  return result;
}

}  // namespace crowdtruth::core
