#include "core/methods/minimax.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/common.h"
#include "core/trace.h"
#include "util/rng.h"
#include "util/special_functions.h"

namespace crowdtruth::core {
namespace {

// softmax over k of tau[k] + sigma_row[k]; writes probabilities to `out`.
void AnswerDistribution(const double* tau, const double* sigma_row, int l,
                        std::vector<double>& out) {
  double max_score = -1e300;
  for (int k = 0; k < l; ++k) {
    out[k] = tau[k] + sigma_row[k];
    max_score = std::max(max_score, out[k]);
  }
  double total = 0.0;
  for (int k = 0; k < l; ++k) {
    out[k] = std::exp(out[k] - max_score);
    total += out[k];
  }
  for (int k = 0; k < l; ++k) out[k] /= total;
}

}  // namespace

CategoricalResult Minimax::Infer(const data::CategoricalDataset& dataset,
                                 const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  util::Rng rng(options.seed);

  Posterior labels = InitialPosterior(dataset, options);
  // tau[i*l + k], sigma[w][j*l + k].
  std::vector<double> tau(static_cast<size_t>(n) * l, 0.0);
  std::vector<std::vector<double>> sigma(
      num_workers, std::vector<double>(l * l, 0.0));

  // Per-answer gradient normalization: a single learning rate must work
  // for tail workers with 3 answers and head workers with thousands.
  std::vector<double> worker_scale(num_workers, 1.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    worker_scale[w] =
        1.0 / std::max<size_t>(dataset.AnswersByWorker(w).size(), 1);
  }
  std::vector<double> task_scale(n, 1.0);
  for (data::TaskId t = 0; t < n; ++t) {
    task_scale[t] =
        1.0 / std::max<size_t>(dataset.AnswersForTask(t).size(), 1);
  }

  std::vector<double> grad_tau(static_cast<size_t>(n) * l);
  std::vector<std::vector<double>> grad_sigma(
      num_workers, std::vector<double>(l * l));
  std::vector<double> p(l);
  std::vector<double> log_belief(l);

  CategoricalResult result;
  IterationTracer tracer(options.trace);
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    tracer.BeginIteration();
    // Parameter update: gradient ascent on the expected log-likelihood.
    for (int step = 0; step < gradient_steps_; ++step) {
      for (size_t i = 0; i < grad_tau.size(); ++i) {
        grad_tau[i] = -regularization_tau_ * tau[i];
      }
      for (data::WorkerId w = 0; w < num_workers; ++w) {
        for (int jk = 0; jk < l * l; ++jk) {
          grad_sigma[w][jk] = -regularization_sigma_ * sigma[w][jk];
        }
      }
      for (data::TaskId t = 0; t < n; ++t) {
        for (const data::TaskVote& vote : dataset.AnswersForTask(t)) {
          for (int j = 0; j < l; ++j) {
            const double weight = labels[t][j];
            if (weight < 1e-9) continue;
            AnswerDistribution(&tau[static_cast<size_t>(t) * l],
                               &sigma[vote.worker][j * l], l, p);
            for (int k = 0; k < l; ++k) {
              const double g =
                  weight * ((vote.label == k ? 1.0 : 0.0) - p[k]);
              grad_tau[static_cast<size_t>(t) * l + k] += g * task_scale[t];
              grad_sigma[vote.worker][j * l + k] +=
                  g * worker_scale[vote.worker];
            }
          }
        }
      }
      for (size_t i = 0; i < tau.size(); ++i) {
        tau[i] += learning_rate_ * grad_tau[i];
      }
      for (data::WorkerId w = 0; w < num_workers; ++w) {
        for (int jk = 0; jk < l * l; ++jk) {
          sigma[w][jk] += learning_rate_ * grad_sigma[w][jk];
        }
      }
    }
    tracer.EndPhase(TracePhase::kQualityStep);

    // Label update. A smoothed class prior estimated from the current
    // labels anchors the classes — without it, heavily imbalanced data
    // (D_Product's 12:88 split) lets the per-class sigma rows drift into
    // label-swapped solutions.
    std::vector<double> log_prior(l);
    {
      std::vector<double> class_mass(l, 1.0);
      double total_mass = l;
      for (data::TaskId t = 0; t < n; ++t) {
        if (dataset.AnswersForTask(t).empty()) continue;
        for (int j = 0; j < l; ++j) class_mass[j] += labels[t][j];
        total_mass += 1.0;
      }
      for (int j = 0; j < l; ++j) {
        log_prior[j] = std::log(class_mass[j] / total_mass);
      }
    }
    Posterior next = labels;
    for (data::TaskId t = 0; t < n; ++t) {
      const auto& votes = dataset.AnswersForTask(t);
      if (votes.empty()) continue;
      log_belief = log_prior;
      for (const data::TaskVote& vote : votes) {
        for (int j = 0; j < l; ++j) {
          AnswerDistribution(&tau[static_cast<size_t>(t) * l],
                             &sigma[vote.worker][j * l], l, p);
          log_belief[j] += std::log(std::max(p[vote.label], 1e-12));
        }
      }
      util::SoftmaxInPlace(log_belief);
      next[t] = log_belief;
    }
    ClampGolden(dataset, options, next);

    const double change = MaxAbsDiff(labels, next);
    tracer.EndPhase(TracePhase::kTruthStep);
    labels = std::move(next);
    result.convergence_trace.push_back(change);
    result.iterations = iteration + 1;
    tracer.EndIteration(result.iterations, change);
    if (change < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.labels = ArgmaxLabels(labels, rng);
  result.worker_quality.assign(num_workers, 0.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    // Average probability of answering correctly, by class, ignoring
    // task-side tendencies.
    double total = 0.0;
    std::vector<double> zero_tau(l, 0.0);
    for (int j = 0; j < l; ++j) {
      AnswerDistribution(zero_tau.data(), &sigma[w][j * l], l, p);
      total += p[j];
    }
    result.worker_quality[w] = total / l;
  }
  result.posterior = std::move(labels);
  return result;
}

}  // namespace crowdtruth::core
