#include "core/methods/minimax.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/common.h"
#include "core/em_loop.h"
#include "util/rng.h"
#include "util/special_functions.h"

namespace crowdtruth::core {
namespace {

// softmax over k of tau[k] + sigma_row[k]; writes probabilities to `out`.
void AnswerDistribution(const double* tau, const double* sigma_row, int l,
                        std::vector<double>& out) {
  double max_score = -1e300;
  for (int k = 0; k < l; ++k) {
    out[k] = tau[k] + sigma_row[k];
    max_score = std::max(max_score, out[k]);
  }
  double total = 0.0;
  for (int k = 0; k < l; ++k) {
    out[k] = std::exp(out[k] - max_score);
    total += out[k];
  }
  for (int k = 0; k < l; ++k) out[k] /= total;
}

}  // namespace

CategoricalResult Minimax::Infer(const data::CategoricalDataset& dataset,
                                 const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  const data::CategoricalCsr& csr = dataset.csr();
  util::Rng rng(options.seed);

  Posterior labels = InitialPosterior(dataset, options);
  // tau[i*l + k], sigma[w][j*l + k].
  std::vector<double> tau(static_cast<size_t>(n) * l, 0.0);
  std::vector<std::vector<double>> sigma(
      num_workers, std::vector<double>(l * l, 0.0));

  // Per-answer gradient normalization: a single learning rate must work
  // for tail workers with 3 answers and head workers with thousands.
  std::vector<double> worker_scale(num_workers, 1.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    worker_scale[w] =
        1.0 / std::max<size_t>(dataset.AnswersByWorker(w).size(), 1);
  }
  std::vector<double> task_scale(n, 1.0);
  for (data::TaskId t = 0; t < n; ++t) {
    task_scale[t] =
        1.0 / std::max<size_t>(dataset.AnswersForTask(t).size(), 1);
  }

  std::vector<double> grad_tau(static_cast<size_t>(n) * l);
  std::vector<std::vector<double>> grad_sigma(
      num_workers, std::vector<double>(l * l));

  const EmDriver driver = EmDriver::FromOptions(options, "Minimax");
  std::vector<std::vector<double>> p_scratch(driver.num_threads,
                                             std::vector<double>(l));
  std::vector<std::vector<double>> log_belief(driver.num_threads,
                                              std::vector<double>(l));
  Posterior next;

  std::vector<EmStep> steps;
  // Parameter update: gradient ascent on the expected log-likelihood.
  // grad_tau shards by task and grad_sigma by worker, so each accumulator
  // is owned by exactly one shard.
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    for (int step = 0; step < gradient_steps_; ++step) {
      context.ParallelShards(n, [&](int t, int slot) {
        std::vector<double>& p = p_scratch[slot];
        double* gt = &grad_tau[static_cast<size_t>(t) * l];
        for (int k = 0; k < l; ++k) {
          gt[k] = -regularization_tau_ * tau[static_cast<size_t>(t) * l + k];
        }
        for (int32_t a = csr.task_offsets[t]; a < csr.task_offsets[t + 1];
             ++a) {
          const data::WorkerId w = csr.task_workers[a];
          const int32_t label = csr.task_labels[a];
          for (int j = 0; j < l; ++j) {
            const double weight = labels[t][j];
            if (weight < 1e-9) continue;
            AnswerDistribution(&tau[static_cast<size_t>(t) * l],
                               &sigma[w][j * l], l, p);
            for (int k = 0; k < l; ++k) {
              const double g = weight * ((label == k ? 1.0 : 0.0) - p[k]);
              gt[k] += g * task_scale[t];
            }
          }
        }
      });
      context.ParallelShards(num_workers, [&](int w, int slot) {
        std::vector<double>& p = p_scratch[slot];
        for (int jk = 0; jk < l * l; ++jk) {
          grad_sigma[w][jk] = -regularization_sigma_ * sigma[w][jk];
        }
        for (int32_t a = csr.worker_offsets[w]; a < csr.worker_offsets[w + 1];
             ++a) {
          const data::TaskId t = csr.worker_tasks[a];
          const int32_t label = csr.worker_labels[a];
          for (int j = 0; j < l; ++j) {
            const double weight = labels[t][j];
            if (weight < 1e-9) continue;
            AnswerDistribution(&tau[static_cast<size_t>(t) * l],
                               &sigma[w][j * l], l, p);
            for (int k = 0; k < l; ++k) {
              const double g = weight * ((label == k ? 1.0 : 0.0) - p[k]);
              grad_sigma[w][j * l + k] += g * worker_scale[w];
            }
          }
        }
      });
      for (size_t i = 0; i < tau.size(); ++i) {
        tau[i] += learning_rate_ * grad_tau[i];
      }
      for (data::WorkerId w = 0; w < num_workers; ++w) {
        for (int jk = 0; jk < l * l; ++jk) {
          sigma[w][jk] += learning_rate_ * grad_sigma[w][jk];
        }
      }
    }
  }});
  // Label update. A smoothed class prior estimated from the current
  // labels anchors the classes — without it, heavily imbalanced data
  // (D_Product's 12:88 split) lets the per-class sigma rows drift into
  // label-swapped solutions.
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    std::vector<double> log_prior(l);
    {
      std::vector<double> class_mass(l, 1.0);
      double total_mass = l;
      for (data::TaskId t = 0; t < n; ++t) {
        if (csr.task_offsets[t] == csr.task_offsets[t + 1]) continue;
        for (int j = 0; j < l; ++j) class_mass[j] += labels[t][j];
        total_mass += 1.0;
      }
      for (int j = 0; j < l; ++j) {
        log_prior[j] = std::log(class_mass[j] / total_mass);
      }
    }
    next = labels;
    context.ParallelShards(n, [&](int t, int slot) {
      const int32_t begin = csr.task_offsets[t];
      const int32_t end = csr.task_offsets[t + 1];
      if (begin == end) return;
      std::vector<double>& p = p_scratch[slot];
      std::vector<double>& belief = log_belief[slot];
      belief = log_prior;
      for (int32_t a = begin; a < end; ++a) {
        for (int j = 0; j < l; ++j) {
          AnswerDistribution(&tau[static_cast<size_t>(t) * l],
                             &sigma[csr.task_workers[a]][j * l], l, p);
          belief[j] += std::log(std::max(p[csr.task_labels[a]], 1e-12));
        }
      }
      util::SoftmaxInPlace(belief);
      next[t] = belief;
    });
    ClampGolden(dataset, options, next);
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool) {
                         const double change = MaxAbsDiff(labels, next);
                         labels = std::move(next);
                         return change;
                       }),
             &result);

  result.labels = ArgmaxLabels(labels, rng);
  result.worker_quality.assign(num_workers, 0.0);
  std::vector<double> p(l);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    // Average probability of answering correctly, by class, ignoring
    // task-side tendencies.
    double total = 0.0;
    std::vector<double> zero_tau(l, 0.0);
    for (int j = 0; j < l; ++j) {
      AnswerDistribution(zero_tau.data(), &sigma[w][j * l], l, p);
      total += p[j];
    }
    result.worker_quality[w] = total / l;
  }
  result.posterior = std::move(labels);
  return result;
}

}  // namespace crowdtruth::core
