#include "core/methods/kos.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/common.h"
#include "core/em_loop.h"
#include "util/logging.h"
#include "util/rng.h"

namespace crowdtruth::core {

CategoricalResult Kos::Infer(const data::CategoricalDataset& dataset,
                             const InferenceOptions& options) const {
  CROWDTRUTH_CHECK_EQ(dataset.num_choices(), 2)
      << "KOS supports decision-making (binary) tasks only";
  const int n = dataset.num_tasks();
  const int num_workers = dataset.num_workers();
  const data::CategoricalCsr& csr = dataset.csr();
  util::Rng rng(options.seed);

  // Messages live on edges; an edge IS a task-major CSR position, so the
  // task-side message loops stream csr.task_offsets directly. The
  // worker-side edge lists are rebuilt in task-ascending order (matching
  // the original edge flattening, not the worker-major insertion order) so
  // each worker's message reduction keeps its exact summation order.
  const int num_edges = csr.num_answers();
  std::vector<double> spin(num_edges);  // +1 for choice 0, -1 for choice 1.
  for (int a = 0; a < num_edges; ++a) {
    spin[a] = csr.task_labels[a] == 0 ? 1.0 : -1.0;
  }
  std::vector<int32_t> worker_edge(num_edges);
  {
    std::vector<int32_t> cursor(csr.worker_offsets.begin(),
                                csr.worker_offsets.end() - 1);
    for (data::TaskId t = 0; t < n; ++t) {
      for (int32_t a = csr.task_offsets[t]; a < csr.task_offsets[t + 1];
           ++a) {
        worker_edge[cursor[csr.task_workers[a]]++] = a;
      }
    }
  }

  std::vector<double> y(num_edges);
  for (double& value : y) value = rng.Normal(1.0, 1.0);
  std::vector<double> x(num_edges, 0.0);

  auto renormalize = [](std::vector<double>& messages) {
    double max_abs = 0.0;
    for (double m : messages) max_abs = std::max(max_abs, std::fabs(m));
    if (max_abs > 1.0) {
      for (double& m : messages) m /= max_abs;
    }
  };

  EmDriver driver = EmDriver::FromOptions(options, "KOS");
  driver.convergence = EmConvergence::kFixedIterations;
  driver.max_iterations = message_rounds_;
  driver.record_trace = false;

  // Kept only when tracing: per-round delta = max worker-message change
  // after renormalization.
  std::vector<double> previous_y;

  std::vector<EmStep> steps;
  // Task -> worker: exclude the receiving edge's own contribution. Each
  // task writes x only on its own edges.
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    if (options.trace != nullptr) previous_y = y;
    context.ParallelShards(n, [&](int t, int) {
      const int32_t begin = csr.task_offsets[t];
      const int32_t end = csr.task_offsets[t + 1];
      double total = 0.0;
      for (int32_t e = begin; e < end; ++e) total += spin[e] * y[e];
      for (int32_t e = begin; e < end; ++e) x[e] = total - spin[e] * y[e];
    });
  }});
  // Worker -> task: likewise, each worker owns its edges' y entries. The
  // renormalization is a cheap whole-array pass kept serial.
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    context.ParallelShards(num_workers, [&](int w, int) {
      const int32_t begin = csr.worker_offsets[w];
      const int32_t end = csr.worker_offsets[w + 1];
      double total = 0.0;
      for (int32_t i = begin; i < end; ++i) {
        const int32_t e = worker_edge[i];
        total += spin[e] * x[e];
      }
      for (int32_t i = begin; i < end; ++i) {
        const int32_t e = worker_edge[i];
        y[e] = total - spin[e] * x[e];
      }
    });
    renormalize(x);
    renormalize(y);
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool delta_needed) {
                         if (!delta_needed) return 0.0;
                         double change = 0.0;
                         for (size_t e = 0; e < y.size(); ++e) {
                           change = std::max(change,
                                             std::fabs(y[e] - previous_y[e]));
                         }
                         return change;
                       }),
             &result);

  result.labels.assign(n, 0);
  for (data::TaskId t = 0; t < n; ++t) {
    double score = 0.0;
    for (int32_t e = csr.task_offsets[t]; e < csr.task_offsets[t + 1]; ++e) {
      score += spin[e] * y[e];
    }
    if (score > 0.0) {
      result.labels[t] = 0;
    } else if (score < 0.0) {
      result.labels[t] = 1;
    } else {
      result.labels[t] = rng.UniformInt(0, 1);
    }
  }

  // Worker quality summary: normalized correlation of the worker's spins
  // with the final task scores (positive = reliable, negative = adversary).
  // Each term is ±1, so the sum is exact and any per-worker answer order
  // gives the same double; the worker-major CSR view is used directly.
  result.worker_quality.assign(num_workers, 0.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    const int32_t begin = csr.worker_offsets[w];
    const int32_t end = csr.worker_offsets[w + 1];
    if (begin == end) continue;
    double agree = 0.0;
    for (int32_t a = begin; a < end; ++a) {
      const double spin_w = csr.worker_labels[a] == 0 ? 1.0 : -1.0;
      const double spin_truth =
          result.labels[csr.worker_tasks[a]] == 0 ? 1.0 : -1.0;
      agree += spin_w * spin_truth;
    }
    result.worker_quality[w] = agree / (end - begin);
  }
  result.iterations = message_rounds_;
  result.converged = true;
  return result;
}

}  // namespace crowdtruth::core
