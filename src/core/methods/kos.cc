#include "core/methods/kos.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/common.h"
#include "core/em_loop.h"
#include "util/logging.h"
#include "util/rng.h"

namespace crowdtruth::core {

CategoricalResult Kos::Infer(const data::CategoricalDataset& dataset,
                             const InferenceOptions& options) const {
  CROWDTRUTH_CHECK_EQ(dataset.num_choices(), 2)
      << "KOS supports decision-making (binary) tasks only";
  const int n = dataset.num_tasks();
  const int num_workers = dataset.num_workers();
  util::Rng rng(options.seed);

  // Flatten the answer graph once; messages live on edges. Edge order
  // follows the per-task lists; per-worker we keep edge indices.
  struct Edge {
    data::TaskId task;
    data::WorkerId worker;
    double spin;  // +1 for choice 0, -1 for choice 1.
  };
  std::vector<Edge> edges;
  std::vector<std::vector<int>> task_edges(n);
  std::vector<std::vector<int>> worker_edges(num_workers);
  for (data::TaskId t = 0; t < n; ++t) {
    for (const data::TaskVote& vote : dataset.AnswersForTask(t)) {
      task_edges[t].push_back(static_cast<int>(edges.size()));
      worker_edges[vote.worker].push_back(static_cast<int>(edges.size()));
      edges.push_back({t, vote.worker, vote.label == 0 ? 1.0 : -1.0});
    }
  }

  std::vector<double> y(edges.size());
  for (double& value : y) value = rng.Normal(1.0, 1.0);
  std::vector<double> x(edges.size(), 0.0);

  auto renormalize = [](std::vector<double>& messages) {
    double max_abs = 0.0;
    for (double m : messages) max_abs = std::max(max_abs, std::fabs(m));
    if (max_abs > 1.0) {
      for (double& m : messages) m /= max_abs;
    }
  };

  EmDriver driver = EmDriver::FromOptions(options, "KOS");
  driver.convergence = EmConvergence::kFixedIterations;
  driver.max_iterations = message_rounds_;
  driver.record_trace = false;

  // Kept only when tracing: per-round delta = max worker-message change
  // after renormalization.
  std::vector<double> previous_y;

  std::vector<EmStep> steps;
  // Task -> worker: exclude the receiving edge's own contribution. Each
  // task writes x only on its own edges.
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    if (options.trace != nullptr) previous_y = y;
    context.ParallelShards(n, [&](int t, int) {
      double total = 0.0;
      for (int e : task_edges[t]) total += edges[e].spin * y[e];
      for (int e : task_edges[t]) x[e] = total - edges[e].spin * y[e];
    });
  }});
  // Worker -> task: likewise, each worker owns its edges' y entries. The
  // renormalization is a cheap whole-array pass kept serial.
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    context.ParallelShards(num_workers, [&](int w, int) {
      double total = 0.0;
      for (int e : worker_edges[w]) total += edges[e].spin * x[e];
      for (int e : worker_edges[w]) y[e] = total - edges[e].spin * x[e];
    });
    renormalize(x);
    renormalize(y);
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool delta_needed) {
                         if (!delta_needed) return 0.0;
                         double change = 0.0;
                         for (size_t e = 0; e < y.size(); ++e) {
                           change = std::max(change,
                                             std::fabs(y[e] - previous_y[e]));
                         }
                         return change;
                       }),
             &result);

  result.labels.assign(n, 0);
  for (data::TaskId t = 0; t < n; ++t) {
    double score = 0.0;
    for (int e : task_edges[t]) score += edges[e].spin * y[e];
    if (score > 0.0) {
      result.labels[t] = 0;
    } else if (score < 0.0) {
      result.labels[t] = 1;
    } else {
      result.labels[t] = rng.UniformInt(0, 1);
    }
  }

  // Worker quality summary: normalized correlation of the worker's spins
  // with the final task scores (positive = reliable, negative = adversary).
  result.worker_quality.assign(num_workers, 0.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    if (worker_edges[w].empty()) continue;
    double agree = 0.0;
    for (int e : worker_edges[w]) {
      const double spin_truth = result.labels[edges[e].task] == 0 ? 1.0 : -1.0;
      agree += edges[e].spin * spin_truth;
    }
    result.worker_quality[w] = agree / worker_edges[w].size();
  }
  result.iterations = message_rounds_;
  result.converged = true;
  return result;
}

}  // namespace crowdtruth::core
