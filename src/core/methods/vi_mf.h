// VI-MF (Liu, Peng & Ihler, NIPS'12; paper §5.3(1) "Optimization
// Function"). Bayesian estimation of the truth marginal Pr(v*_i | V)
// (Eq. 2) approximated with mean-field variational inference.
//
// Model: per-worker confusion matrix with Dirichlet row priors. Mean-field
// updates alternate between
//   mu_i(j) prop-to exp( E[log p_j] + sum_w E[log pi^w_{j, v_i^w}] )
// and the Dirichlet posterior pseudo-counts
//   alpha-hat^w_{j,k} = alpha_{j,k} + sum_i mu_i(j) 1{v_i^w = k},
// where E[log pi_{j,k}] = digamma(alpha-hat_{j,k}) -
// digamma(sum_k alpha-hat_{j,k}).
#ifndef CROWDTRUTH_CORE_METHODS_VI_MF_H_
#define CROWDTRUTH_CORE_METHODS_VI_MF_H_

#include "core/inference.h"

namespace crowdtruth::core {

class ViMf : public CategoricalMethod {
 public:
  explicit ViMf(double prior_diag = 2.0, double prior_off = 1.0)
      : prior_diag_(prior_diag), prior_off_(prior_off) {}

  std::string name() const override { return "VI-MF"; }
  CategoricalResult Infer(const data::CategoricalDataset& dataset,
                          const InferenceOptions& options) const override;

 private:
  double prior_diag_;
  double prior_off_;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_VI_MF_H_
