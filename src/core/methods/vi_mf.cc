#include "core/methods/vi_mf.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/common.h"
#include "core/em_loop.h"
#include "util/rng.h"
#include "util/special_functions.h"

namespace crowdtruth::core {

CategoricalResult ViMf::Infer(const data::CategoricalDataset& dataset,
                              const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  const data::CategoricalCsr& csr = dataset.csr();
  util::Rng rng(options.seed);

  Posterior posterior = InitialPosterior(dataset, options);

  // Per-worker Dirichlet prior pseudo-counts; qualification-test estimates
  // sharpen the diagonal.
  std::vector<double> prior_diag(num_workers, prior_diag_);
  std::vector<double> prior_off(num_workers, prior_off_);
  if (!options.initial_worker_quality.empty()) {
    // 20 golden tasks' worth of pseudo-counts at the estimated accuracy.
    constexpr double kQualificationStrength = 20.0;
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      const double q =
          std::clamp(options.initial_worker_quality[w], 0.05, 0.95);
      prior_diag[w] = prior_diag_ + kQualificationStrength * q;
      prior_off[w] =
          prior_off_ + kQualificationStrength * (1.0 - q) / (l - 1);
    }
  }

  // elog[w][k*l+j] = E[log pi^w_{j,k}] under the current Dirichlet
  // posterior, stored transposed (answered label major) so the truth step's
  // per-answer row read is unit-stride.
  std::vector<std::vector<double>> elog(num_workers,
                                        std::vector<double>(l * l, 0.0));
  std::vector<double> elog_class(l, std::log(1.0 / l));

  const EmDriver driver = EmDriver::FromOptions(options, "VI-MF");
  std::vector<std::vector<double>> counts(driver.num_threads,
                                          std::vector<double>(l * l));
  std::vector<std::vector<double>> log_belief(driver.num_threads,
                                              std::vector<double>(l));
  Posterior next;

  std::vector<EmStep> steps;
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    // Update Dirichlet posteriors and their expected log parameters.
    context.ParallelShards(num_workers, [&](int w, int slot) {
      std::vector<double>& count = counts[slot];
      for (int j = 0; j < l; ++j) {
        for (int k = 0; k < l; ++k) {
          count[j * l + k] = j == k ? prior_diag[w] : prior_off[w];
        }
      }
      for (int32_t a = csr.worker_offsets[w]; a < csr.worker_offsets[w + 1];
           ++a) {
        const double* post = posterior[csr.worker_tasks[a]].data();
        const int32_t label = csr.worker_labels[a];
        for (int j = 0; j < l; ++j) count[j * l + label] += post[j];
      }
      for (int j = 0; j < l; ++j) {
        double row_total = 0.0;
        for (int k = 0; k < l; ++k) row_total += count[j * l + k];
        const double digamma_total = util::Digamma(row_total);
        for (int k = 0; k < l; ++k) {
          elog[w][k * l + j] = util::Digamma(count[j * l + k]) -
                               digamma_total;
        }
      }
    });
    // Class-prior Dirichlet posterior: a short serial reduce over tasks.
    std::vector<double> class_counts(l, 1.0);
    for (data::TaskId t = 0; t < n; ++t) {
      if (csr.task_offsets[t] == csr.task_offsets[t + 1]) continue;
      for (int j = 0; j < l; ++j) class_counts[j] += posterior[t][j];
    }
    double class_total = 0.0;
    for (double c : class_counts) class_total += c;
    const double digamma_class_total = util::Digamma(class_total);
    for (int j = 0; j < l; ++j) {
      elog_class[j] = util::Digamma(class_counts[j]) - digamma_class_total;
    }
  }});
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    next = posterior;
    context.ParallelShards(n, [&](int t, int slot) {
      const int32_t begin = csr.task_offsets[t];
      const int32_t end = csr.task_offsets[t + 1];
      if (begin == end) return;
      std::vector<double>& belief = log_belief[slot];
      belief = elog_class;
      for (int32_t a = begin; a < end; ++a) {
        const double* row =
            elog[csr.task_workers[a]].data() + csr.task_labels[a] * l;
        for (int j = 0; j < l; ++j) belief[j] += row[j];
      }
      util::SoftmaxInPlace(belief);
      next[t] = belief;
    });
    ClampGolden(dataset, options, next);
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool) {
                         const double change = MaxAbsDiff(posterior, next);
                         posterior = std::move(next);
                         return change;
                       }),
             &result);

  result.labels = ArgmaxLabels(posterior, rng);
  result.worker_quality.assign(num_workers, 0.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    // Posterior-mean diagonal averaged over classes (the diagonal is
    // invariant under the transposed storage).
    double total = 0.0;
    for (int j = 0; j < l; ++j) {
      total += std::exp(elog[w][j * l + j]);
    }
    result.worker_quality[w] = total / l;
  }
  result.posterior = std::move(posterior);
  return result;
}

}  // namespace crowdtruth::core
