#include "core/methods/bcc.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/common.h"
#include "core/em_loop.h"
#include "util/rng.h"

namespace crowdtruth::core {

CategoricalResult Bcc::Infer(const data::CategoricalDataset& dataset,
                             const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  const data::CategoricalCsr& csr = dataset.csr();
  util::Rng rng(options.seed);

  // State: hard truth assignment, per-worker confusion matrices (flattened
  // j*l+k, stored as log for the sampling step), class prior.
  std::vector<data::LabelId> truth = MajorityVoteLabels(dataset, options, rng);
  std::vector<std::vector<double>> log_confusion(
      num_workers, std::vector<double>(l * l, std::log(1.0 / l)));
  std::vector<double> log_class(l, std::log(1.0 / l));

  std::vector<std::vector<double>> marginal(n, std::vector<double>(l, 0.0));
  std::vector<std::vector<double>> diag_sum(
      num_workers, std::vector<double>(l, 0.0));
  std::vector<double> class_prior_sum(l, 0.0);

  std::vector<double> row_counts(l);
  std::vector<double> count_matrix(static_cast<size_t>(l) * l);
  std::vector<double> log_weights(l);

  const int total_sweeps = burn_in_ + samples_;
  EmDriver driver = EmDriver::FromOptions(options, "BCC");
  driver.convergence = EmConvergence::kFixedIterations;
  driver.max_iterations = total_sweeps;
  driver.record_trace = false;

  // Previous sweep's assignment, kept only when tracing: the per-sweep
  // "delta" of a Gibbs sampler is the fraction of truth labels that flipped.
  std::vector<data::LabelId> previous_truth;

  // Both kernels run serially: every sample is drawn from the one
  // sequential RNG stream, so the chain is identical at any thread count.
  std::vector<EmStep> steps;
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    const int sweep = context.iteration();
    if (options.trace != nullptr) previous_truth = truth;
    // Sample confusion matrices. One scatter pass over the worker's
    // answers replaces the per-class filter passes: each cell still starts
    // at its prior and receives the same ordered sequence of +1.0 adds, so
    // the counts (and the RNG draw order) are unchanged.
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      for (int j = 0; j < l; ++j) {
        for (int k = 0; k < l; ++k) {
          count_matrix[j * l + k] = j == k ? prior_diag_ : prior_off_;
        }
      }
      for (int32_t a = csr.worker_offsets[w]; a < csr.worker_offsets[w + 1];
           ++a) {
        count_matrix[truth[csr.worker_tasks[a]] * l + csr.worker_labels[a]] +=
            1.0;
      }
      for (int j = 0; j < l; ++j) {
        for (int k = 0; k < l; ++k) row_counts[k] = count_matrix[j * l + k];
        const std::vector<double> row = rng.Dirichlet(row_counts);
        for (int k = 0; k < l; ++k) {
          log_confusion[w][j * l + k] = std::log(std::max(row[k], 1e-12));
        }
        if (sweep >= burn_in_) {
          diag_sum[w][j] += row[j];
        }
      }
    }

    // Sample the class prior.
    std::vector<double> class_counts(l, 1.0);
    for (data::TaskId t = 0; t < n; ++t) {
      if (csr.task_offsets[t] == csr.task_offsets[t + 1]) continue;
      class_counts[truth[t]] += 1.0;
    }
    const std::vector<double> class_prior = rng.Dirichlet(class_counts);
    for (int j = 0; j < l; ++j) {
      log_class[j] = std::log(std::max(class_prior[j], 1e-12));
      if (sweep >= burn_in_) class_prior_sum[j] += class_prior[j];
    }
  }});
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    const int sweep = context.iteration();
    // Sample task truths.
    for (data::TaskId t = 0; t < n; ++t) {
      const int32_t begin = csr.task_offsets[t];
      const int32_t end = csr.task_offsets[t + 1];
      if (begin == end) continue;
      log_weights = log_class;
      for (int32_t a = begin; a < end; ++a) {
        const auto& matrix = log_confusion[csr.task_workers[a]];
        const int32_t label = csr.task_labels[a];
        for (int j = 0; j < l; ++j) {
          log_weights[j] += matrix[j * l + label];
        }
      }
      truth[t] = rng.CategoricalFromLog(log_weights);
      if (sweep >= burn_in_) marginal[t][truth[t]] += 1.0;
    }
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool delta_needed) {
                         if (!delta_needed) return 0.0;
                         int flips = 0;
                         for (data::TaskId t = 0; t < n; ++t) {
                           if (truth[t] != previous_truth[t]) ++flips;
                         }
                         return static_cast<double>(flips) / std::max(n, 1);
                       }),
             &result);

  result.iterations = total_sweeps;
  result.converged = true;
  for (data::TaskId t = 0; t < n; ++t) {
    double total = 0.0;
    for (int j = 0; j < l; ++j) total += marginal[t][j];
    if (total > 0.0) {
      for (int j = 0; j < l; ++j) marginal[t][j] /= total;
    } else {
      // Tasks without answers keep a uniform marginal.
      for (int j = 0; j < l; ++j) marginal[t][j] = 1.0 / l;
    }
  }
  result.labels = ArgmaxLabels(marginal, rng);
  result.posterior = std::move(marginal);

  result.worker_quality.assign(num_workers, 0.0);
  double class_total = 0.0;
  for (double c : class_prior_sum) class_total += c;
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    double expected_correct = 0.0;
    for (int j = 0; j < l; ++j) {
      const double prior_j =
          class_total > 0 ? class_prior_sum[j] / class_total : 1.0 / l;
      expected_correct += prior_j * diag_sum[w][j] / samples_;
    }
    result.worker_quality[w] = expected_correct;
  }
  return result;
}

}  // namespace crowdtruth::core
