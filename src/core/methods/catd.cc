#include "core/methods/catd.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/common.h"
#include "core/em_loop.h"
#include "util/rng.h"
#include "util/safe_math.h"
#include "util/special_functions.h"

namespace crowdtruth::core {
namespace {

// Avoids division by zero for error-free workers; small enough that such
// workers still dominate the weighted vote.
constexpr double kErrorEpsilon = 0.01;

// X^2(0.975, |T^w|) per worker; dof is at least 1.
std::vector<double> ChiSquaredCoefficients(const std::vector<int>& counts) {
  std::vector<double> coefficients(counts.size(), 0.0);
  for (size_t w = 0; w < counts.size(); ++w) {
    const double dof = std::max(counts[w], 1);
    coefficients[w] = util::ChiSquaredQuantile(0.975, dof);
  }
  return coefficients;
}

}  // namespace

CategoricalResult CatdCategorical::Infer(
    const data::CategoricalDataset& dataset,
    const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  const data::CategoricalCsr& csr = dataset.csr();
  const bool golden = HasGoldenLabels(dataset, options);
  util::Rng rng(options.seed);

  std::vector<int> answer_counts(num_workers, 0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    answer_counts[w] = static_cast<int>(dataset.AnswersByWorker(w).size());
  }
  const std::vector<double> chi2 = ChiSquaredCoefficients(answer_counts);

  std::vector<double> quality(num_workers, 1.0);
  if (!options.initial_worker_quality.empty()) {
    // Seed weights from the qualification accuracy, scaled by confidence.
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      const double accuracy =
          std::clamp(options.initial_worker_quality[w], 0.05, 0.999);
      const double expected_error =
          (1.0 - accuracy) * std::max(answer_counts[w], 1);
      quality[w] = chi2[w] / (expected_error + kErrorEpsilon);
    }
  }

  EmDriver driver = EmDriver::FromOptions(options, "CATD");
  driver.convergence = EmConvergence::kDeltaIsZero;
  driver.min_iterations = 2;

  std::vector<data::LabelId> labels(n, 0);
  std::vector<data::LabelId> next(n, 0);
  std::vector<std::vector<double>> scores(driver.num_threads,
                                          std::vector<double>(l));
  // Tasks whose weighted vote tied; the random tie-break happens in a serial
  // task-order pass so the RNG stream matches the serial algorithm.
  std::vector<std::vector<int>> tie_sets(n);

  std::vector<EmStep> steps;
  // Truth step: weighted vote.
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    context.ParallelShards(n, [&](int t, int slot) {
      tie_sets[t].clear();
      if (golden && options.golden_labels[t] != data::kNoTruth) {
        next[t] = options.golden_labels[t];
        return;
      }
      std::vector<double>& score = scores[slot];
      std::fill(score.begin(), score.end(), 0.0);
      for (int32_t a = csr.task_offsets[t]; a < csr.task_offsets[t + 1];
           ++a) {
        score[csr.task_labels[a]] += quality[csr.task_workers[a]];
      }
      double best = -1.0;
      std::vector<int>& ties = tie_sets[t];
      for (int z = 0; z < l; ++z) {
        if (score[z] > best + 1e-12) {
          best = score[z];
          ties.assign(1, z);
        } else if (std::fabs(score[z] - best) <= 1e-12) {
          ties.push_back(z);
        }
      }
      if (ties.size() == 1) next[t] = ties[0];
    });
    for (data::TaskId t = 0; t < n; ++t) {
      if (tie_sets[t].size() > 1) {
        next[t] = tie_sets[t][rng.UniformInt(
            0, static_cast<int>(tie_sets[t].size()) - 1)];
      }
    }
  }});
  // Weight step: confidence-scaled inverse error.
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    context.ParallelShards(num_workers, [&](int w, int) {
      double error = 0.0;
      for (int32_t a = csr.worker_offsets[w]; a < csr.worker_offsets[w + 1];
           ++a) {
        if (csr.worker_labels[a] != next[csr.worker_tasks[a]]) error += 1.0;
      }
      quality[w] = chi2[w] / (error + kErrorEpsilon);
    });
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool) {
                         int changed = 0;
                         for (data::TaskId t = 0; t < n; ++t) {
                           if (next[t] != labels[t]) ++changed;
                         }
                         labels = next;
                         return static_cast<double>(changed) / std::max(n, 1);
                       }),
             &result);

  result.labels = std::move(labels);
  result.worker_quality = std::move(quality);
  return result;
}

NumericResult CatdNumeric::Infer(const data::NumericDataset& dataset,
                                 const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int num_workers = dataset.num_workers();
  const data::NumericCsr& csr = dataset.csr();

  std::vector<int> answer_counts(num_workers, 0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    answer_counts[w] = static_cast<int>(dataset.AnswersByWorker(w).size());
  }
  const std::vector<double> chi2 = ChiSquaredCoefficients(answer_counts);

  std::vector<double> quality(num_workers, 1.0);
  if (!options.initial_worker_quality.empty()) {
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      const double rmse = options.initial_worker_quality[w];
      const double expected_error =
          rmse * rmse * std::max(answer_counts[w], 1);
      quality[w] = chi2[w] / (expected_error + kErrorEpsilon);
    }
  }

  EmDriver driver = EmDriver::FromOptions(options, "CATD");
  driver.min_iterations = 2;

  std::vector<double> values = MeanValues(dataset, options);
  std::vector<double> next(n, 0.0);

  std::vector<EmStep> steps;
  // Truth step: weighted mean.
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    context.ParallelShards(n, [&](int t, int) {
      const int32_t begin = csr.task_offsets[t];
      const int32_t end = csr.task_offsets[t + 1];
      if (begin == end) {
        next[t] = 0.0;
        return;
      }
      double weighted_sum = 0.0;
      double weight_total = 0.0;
      for (int32_t a = begin; a < end; ++a) {
        const double weight = std::max(quality[csr.task_workers[a]], 1e-12);
        weighted_sum += weight * csr.task_values[a];
        weight_total += weight;
      }
      // weight_total > 0 by the floor above; the fallback only fires when
      // weighted_sum itself overflowed.
      next[t] = util::SafeDiv(weighted_sum, weight_total, 0.0);
    });
    ClampGoldenValues(dataset, options, next);
  }});
  // Weight step.
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    context.ParallelShards(num_workers, [&](int w, int) {
      double error = 0.0;
      for (int32_t a = csr.worker_offsets[w]; a < csr.worker_offsets[w + 1];
           ++a) {
        const double err = csr.worker_values[a] - next[csr.worker_tasks[a]];
        error += err * err;
      }
      // Identical to chi2 / (error + eps) for finite error; an overflowed
      // (inf) error yields weight 0 and a NaN falls back to 0 as well.
      quality[w] = util::SafeDiv(chi2[w], error + kErrorEpsilon, 0.0);
    });
  }});

  NumericResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool) {
                         double change = 0.0;
                         for (data::TaskId t = 0; t < n; ++t) {
                           change =
                               std::max(change, std::fabs(next[t] - values[t]));
                         }
                         values = next;
                         return change;
                       }),
             &result);

  result.values = std::move(values);
  result.worker_quality = std::move(quality);
  return result;
}

}  // namespace crowdtruth::core
