#include "core/methods/confusion_em.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/em_loop.h"
#include "util/rng.h"
#include "util/safe_math.h"
#include "util/special_functions.h"

namespace crowdtruth::core::internal {
namespace {

// Flattened per-worker confusion matrices: matrix[w][j * l + k].
using ConfusionMatrices = std::vector<std::vector<double>>;

// Builds confusion matrices directly from qualification-test accuracies:
// diagonal q, off-diagonal (1 - q) / (l - 1).
ConfusionMatrices MatricesFromInitialQuality(
    const std::vector<double>& initial_quality, int num_workers, int l) {
  ConfusionMatrices matrices(num_workers, std::vector<double>(l * l));
  for (int w = 0; w < num_workers; ++w) {
    const double q = util::ClampProb(initial_quality[w], 0.05);
    for (int j = 0; j < l; ++j) {
      for (int k = 0; k < l; ++k) {
        matrices[w][j * l + k] = j == k ? q : (1.0 - q) / (l - 1);
      }
    }
  }
  return matrices;
}

// M-step half for one worker: confusion matrix from expected co-occurrence
// counts over the worker's own votes.
void EstimateWorkerMatrix(const data::CategoricalDataset& dataset,
                          const Posterior& posterior,
                          const ConfusionEmConfig& config, data::WorkerId w,
                          std::vector<double>& matrix) {
  const int l = dataset.num_choices();
  for (int j = 0; j < l; ++j) {
    for (int k = 0; k < l; ++k) {
      matrix[j * l + k] =
          config.smoothing + (j == k ? config.prior_diag : config.prior_off);
    }
  }
  for (const data::WorkerVote& vote : dataset.AnswersByWorker(w)) {
    for (int j = 0; j < l; ++j) {
      matrix[j * l + vote.label] += posterior[vote.task][j];
    }
  }
  for (int j = 0; j < l; ++j) {
    double row_total = 0.0;
    for (int k = 0; k < l; ++k) row_total += matrix[j * l + k];
    if (!std::isfinite(row_total) || row_total <= 0.0) {
      // Saturated posteriors can overflow the expected counts; reset the
      // row to uniform rather than dividing a non-finite total through.
      for (int k = 0; k < l; ++k) matrix[j * l + k] = 1.0 / l;
      continue;
    }
    for (int k = 0; k < l; ++k) matrix[j * l + k] /= row_total;
  }
}

// E-step half for one task, via scratch `log_belief`. Shared between the
// pre-loop qualification pass and the truth kernel.
void EstimateTaskBelief(const data::CategoricalDataset& dataset,
                        const ConfusionMatrices& matrices,
                        const std::vector<double>& class_prior, data::TaskId t,
                        std::vector<double>& log_belief, Posterior& posterior) {
  const int l = dataset.num_choices();
  const auto& votes = dataset.AnswersForTask(t);
  if (votes.empty()) return;
  // Smoothing keeps priors and matrix cells positive on well-formed runs;
  // SafeLog covers a fully collapsed class or cell.
  for (int j = 0; j < l; ++j) log_belief[j] = util::SafeLog(class_prior[j]);
  for (const data::TaskVote& vote : votes) {
    const auto& matrix = matrices[vote.worker];
    for (int j = 0; j < l; ++j) {
      log_belief[j] += util::SafeLog(matrix[j * l + vote.label]);
    }
  }
  util::SoftmaxInPlace(log_belief);
  posterior[t] = log_belief;
}

}  // namespace

CategoricalResult RunConfusionEm(const data::CategoricalDataset& dataset,
                                 const InferenceOptions& options,
                                 const ConfusionEmConfig& config) {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  util::Rng rng(options.seed);

  Posterior posterior = InitialPosterior(dataset, options);
  ConfusionMatrices matrices(num_workers,
                             std::vector<double>(l * l, 1.0 / l));
  std::vector<double> class_prior(l, 1.0 / l);

  const EmDriver driver = EmDriver::FromOptions(options, config.method_name);
  std::vector<std::vector<double>> log_belief(driver.num_threads,
                                              std::vector<double>(l));

  // Qualification test: the initial E-step runs with matrices built from
  // the supplied accuracies instead of a vote-count M-step.
  if (!options.initial_worker_quality.empty()) {
    matrices = MatricesFromInitialQuality(options.initial_worker_quality,
                                          num_workers, l);
    for (data::TaskId t = 0; t < n; ++t) {
      EstimateTaskBelief(dataset, matrices, class_prior, t, log_belief[0],
                         posterior);
    }
    ClampGolden(dataset, options, posterior);
  }

  Posterior next;
  std::vector<EmStep> steps;
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    // Class prior from expected class counts: a short serial reduce over
    // tasks (the parallel payoff is in the per-worker matrices below).
    std::fill(class_prior.begin(), class_prior.end(), config.prior_class);
    for (data::TaskId t = 0; t < n; ++t) {
      if (dataset.AnswersForTask(t).empty()) continue;
      for (int j = 0; j < l; ++j) class_prior[j] += posterior[t][j];
    }
    double prior_total = 0.0;
    for (double p : class_prior) prior_total += p;
    if (!std::isfinite(prior_total) || prior_total <= 0.0) {
      std::fill(class_prior.begin(), class_prior.end(), 1.0 / l);
    } else {
      for (double& p : class_prior) p /= prior_total;
    }

    context.ParallelShards(num_workers, [&](int w, int) {
      EstimateWorkerMatrix(dataset, posterior, config, w, matrices[w]);
    });
  }});
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    next = posterior;
    context.ParallelShards(n, [&](int t, int slot) {
      EstimateTaskBelief(dataset, matrices, class_prior, t, log_belief[slot],
                         next);
    });
    ClampGolden(dataset, options, next);
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool) {
                         const double change = MaxAbsDiff(posterior, next);
                         posterior = std::move(next);
                         return change;
                       }),
             &result);

  result.labels = ArgmaxLabels(posterior, rng);
  result.worker_quality.assign(num_workers, 0.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    // Scalar summary: prior-weighted diagonal of the confusion matrix,
    // i.e. the marginal probability of a correct answer.
    double expected_correct = 0.0;
    for (int j = 0; j < l; ++j) {
      expected_correct += class_prior[j] * matrices[w][j * l + j];
    }
    result.worker_quality[w] = expected_correct;
  }
  result.worker_confusion = std::move(matrices);
  result.posterior = std::move(posterior);
  return result;
}

}  // namespace crowdtruth::core::internal
