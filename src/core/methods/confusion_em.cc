#include "core/methods/confusion_em.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/em_loop.h"
#include "util/rng.h"
#include "util/safe_math.h"
#include "util/special_functions.h"

namespace crowdtruth::core::internal {
namespace {

// Flattened per-worker confusion matrices: matrix[w][j * l + k].
using ConfusionMatrices = std::vector<std::vector<double>>;

// Builds confusion matrices directly from qualification-test accuracies:
// diagonal q, off-diagonal (1 - q) / (l - 1).
ConfusionMatrices MatricesFromInitialQuality(
    const std::vector<double>& initial_quality, int num_workers, int l) {
  ConfusionMatrices matrices(num_workers, std::vector<double>(l * l));
  for (int w = 0; w < num_workers; ++w) {
    const double q = util::ClampProb(initial_quality[w], 0.05);
    for (int j = 0; j < l; ++j) {
      for (int k = 0; k < l; ++k) {
        matrices[w][j * l + k] = j == k ? q : (1.0 - q) / (l - 1);
      }
    }
  }
  return matrices;
}

// Transposed log view of one confusion matrix: logm_t[k * l + j] =
// SafeLog(matrix[j * l + k]). Refreshing this once per iteration replaces
// the l SafeLog calls per answer in the E-step with l unit-stride adds —
// same SafeLog inputs, so the doubles are bitwise unchanged.
void FillTransposedLogTable(const std::vector<double>& matrix, int l,
                            std::vector<double>& logm_t) {
  for (int j = 0; j < l; ++j) {
    for (int k = 0; k < l; ++k) {
      logm_t[k * l + j] = util::SafeLog(matrix[j * l + k]);
    }
  }
}

// M-step half for one worker: confusion matrix from expected co-occurrence
// counts over the worker's own votes, streamed from the worker-major CSR.
// `posterior` is the flat n*l row-major belief array: one indirection per
// answer instead of the two a nested vector-of-vectors would cost.
void EstimateWorkerMatrix(const data::CategoricalCsr& csr, int l,
                          const double* posterior,
                          const ConfusionEmConfig& config, data::WorkerId w,
                          std::vector<double>& matrix) {
  for (int j = 0; j < l; ++j) {
    for (int k = 0; k < l; ++k) {
      matrix[j * l + k] =
          config.smoothing + (j == k ? config.prior_diag : config.prior_off);
    }
  }
  for (int32_t a = csr.worker_offsets[w]; a < csr.worker_offsets[w + 1]; ++a) {
    const double* post = posterior + csr.worker_tasks[a] * l;
    const int32_t label = csr.worker_labels[a];
    for (int j = 0; j < l; ++j) matrix[j * l + label] += post[j];
  }
  for (int j = 0; j < l; ++j) {
    double row_total = 0.0;
    for (int k = 0; k < l; ++k) row_total += matrix[j * l + k];
    if (!std::isfinite(row_total) || row_total <= 0.0) {
      // Saturated posteriors can overflow the expected counts; reset the
      // row to uniform rather than dividing a non-finite total through.
      for (int k = 0; k < l; ++k) matrix[j * l + k] = 1.0 / l;
      continue;
    }
    for (int k = 0; k < l; ++k) matrix[j * l + k] /= row_total;
  }
}

// E-step half for one task, via scratch `log_belief`. Streams the task's
// answers from the task-major CSR; each answer contributes one contiguous
// row of its worker's transposed log table. Shared between the pre-loop
// qualification pass and the truth kernel.
void EstimateTaskBelief(const data::CategoricalCsr& csr, int l,
                        const ConfusionMatrices& log_matrices_t,
                        const std::vector<double>& log_class_prior,
                        data::TaskId t, std::vector<double>& log_belief,
                        double* posterior) {
  const int32_t begin = csr.task_offsets[t];
  const int32_t end = csr.task_offsets[t + 1];
  if (begin == end) return;
  // Smoothing keeps priors and matrix cells positive on well-formed runs;
  // SafeLog (applied when the tables were filled) covers a fully collapsed
  // class or cell.
  for (int j = 0; j < l; ++j) log_belief[j] = log_class_prior[j];
  for (int32_t a = begin; a < end; ++a) {
    const double* row =
        log_matrices_t[csr.task_workers[a]].data() + csr.task_labels[a] * l;
    for (int j = 0; j < l; ++j) log_belief[j] += row[j];
  }
  util::SoftmaxInPlace(log_belief);
  std::copy(log_belief.begin(), log_belief.end(), posterior + t * l);
}

// Flat-array twin of ClampGolden (core/common.cc): identical writes (zero
// the row, set the golden class to exactly 1.0), different layout.
void ClampGoldenFlat(const data::CategoricalDataset& dataset,
                     const InferenceOptions& options, int l,
                     std::vector<double>& posterior) {
  if (!HasGoldenLabels(dataset, options)) return;
  for (data::TaskId t = 0; t < dataset.num_tasks(); ++t) {
    const data::LabelId g = options.golden_labels[t];
    if (g == data::kNoTruth) continue;
    std::fill(posterior.begin() + t * l, posterior.begin() + (t + 1) * l, 0.0);
    posterior[t * l + g] = 1.0;
  }
}

}  // namespace

CategoricalResult RunConfusionEm(const data::CategoricalDataset& dataset,
                                 const InferenceOptions& options,
                                 const ConfusionEmConfig& config) {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  const data::CategoricalCsr& csr = dataset.csr();
  util::Rng rng(options.seed);

  // Flat n*l row-major belief arrays. The nested Posterior puts every
  // task's row in its own heap block, so each of the |V| M-step reads pays
  // a double indirection into a scattered allocation; one contiguous array
  // halves the pointer chasing and keeps the whole belief state (n*l
  // doubles) cache-resident. The arithmetic per row is untouched, so the
  // bits are too.
  std::vector<double> posterior(static_cast<size_t>(n) * l);
  {
    const Posterior initial = InitialPosterior(dataset, options);
    for (data::TaskId t = 0; t < n; ++t) {
      std::copy(initial[t].begin(), initial[t].end(),
                posterior.begin() + static_cast<size_t>(t) * l);
    }
  }
  ConfusionMatrices matrices(num_workers,
                             std::vector<double>(l * l, 1.0 / l));
  ConfusionMatrices log_matrices_t(num_workers, std::vector<double>(l * l));
  std::vector<double> class_prior(l, 1.0 / l);
  std::vector<double> log_class_prior(l, util::SafeLog(1.0 / l));

  const EmDriver driver = EmDriver::FromOptions(options, config.method_name);
  std::vector<std::vector<double>> log_belief(driver.num_threads,
                                              std::vector<double>(l));

  // Qualification test: the initial E-step runs with matrices built from
  // the supplied accuracies instead of a vote-count M-step.
  if (!options.initial_worker_quality.empty()) {
    matrices = MatricesFromInitialQuality(options.initial_worker_quality,
                                          num_workers, l);
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      FillTransposedLogTable(matrices[w], l, log_matrices_t[w]);
    }
    for (data::TaskId t = 0; t < n; ++t) {
      EstimateTaskBelief(csr, l, log_matrices_t, log_class_prior, t,
                         log_belief[0], posterior.data());
    }
    ClampGoldenFlat(dataset, options, l, posterior);
  }

  std::vector<double> next;
  std::vector<EmStep> steps;
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    // Class prior from expected class counts: a short serial reduce over
    // tasks (the parallel payoff is in the per-worker matrices below).
    std::fill(class_prior.begin(), class_prior.end(), config.prior_class);
    for (data::TaskId t = 0; t < n; ++t) {
      if (csr.task_offsets[t] == csr.task_offsets[t + 1]) continue;
      const double* post = posterior.data() + static_cast<size_t>(t) * l;
      for (int j = 0; j < l; ++j) class_prior[j] += post[j];
    }
    double prior_total = 0.0;
    for (double p : class_prior) prior_total += p;
    if (!std::isfinite(prior_total) || prior_total <= 0.0) {
      std::fill(class_prior.begin(), class_prior.end(), 1.0 / l);
    } else {
      for (double& p : class_prior) p /= prior_total;
    }
    for (int j = 0; j < l; ++j) {
      log_class_prior[j] = util::SafeLog(class_prior[j]);
    }

    context.ParallelShards(num_workers, [&](int w, int) {
      EstimateWorkerMatrix(csr, l, posterior.data(), config, w, matrices[w]);
      FillTransposedLogTable(matrices[w], l, log_matrices_t[w]);
    });
  }});
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    next = posterior;  // Answerless tasks keep their belief.
    context.ParallelShards(n, [&](int t, int slot) {
      EstimateTaskBelief(csr, l, log_matrices_t, log_class_prior, t,
                         log_belief[slot], next.data());
    });
    ClampGoldenFlat(dataset, options, l, next);
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool) {
                         // MaxAbsDiff on the flat rows: same |a - b| set,
                         // and max is order-independent.
                         double change = 0.0;
                         for (size_t i = 0; i < posterior.size(); ++i) {
                           change = std::max(change,
                                             std::fabs(posterior[i] - next[i]));
                         }
                         posterior.swap(next);
                         return change;
                       }),
             &result);

  Posterior posterior_rows(n, std::vector<double>(l));
  for (data::TaskId t = 0; t < n; ++t) {
    std::copy(posterior.begin() + static_cast<size_t>(t) * l,
              posterior.begin() + static_cast<size_t>(t + 1) * l,
              posterior_rows[t].begin());
  }
  result.labels = ArgmaxLabels(posterior_rows, rng);
  result.worker_quality.assign(num_workers, 0.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    // Scalar summary: prior-weighted diagonal of the confusion matrix,
    // i.e. the marginal probability of a correct answer.
    double expected_correct = 0.0;
    for (int j = 0; j < l; ++j) {
      expected_correct += class_prior[j] * matrices[w][j * l + j];
    }
    result.worker_quality[w] = expected_correct;
  }
  result.worker_confusion = std::move(matrices);
  result.posterior = std::move(posterior_rows);
  return result;
}

}  // namespace crowdtruth::core::internal
