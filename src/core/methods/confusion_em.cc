#include "core/methods/confusion_em.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/trace.h"
#include "util/rng.h"
#include "util/special_functions.h"

namespace crowdtruth::core::internal {
namespace {

// Flattened per-worker confusion matrices: matrix[w][j * l + k].
using ConfusionMatrices = std::vector<std::vector<double>>;

// Builds confusion matrices directly from qualification-test accuracies:
// diagonal q, off-diagonal (1 - q) / (l - 1).
ConfusionMatrices MatricesFromInitialQuality(
    const std::vector<double>& initial_quality, int num_workers, int l) {
  ConfusionMatrices matrices(num_workers, std::vector<double>(l * l));
  for (int w = 0; w < num_workers; ++w) {
    const double q = std::clamp(initial_quality[w], 0.05, 0.95);
    for (int j = 0; j < l; ++j) {
      for (int k = 0; k < l; ++k) {
        matrices[w][j * l + k] = j == k ? q : (1.0 - q) / (l - 1);
      }
    }
  }
  return matrices;
}

void MStep(const data::CategoricalDataset& dataset, const Posterior& posterior,
           const ConfusionEmConfig& config, ConfusionMatrices& matrices,
           std::vector<double>& class_prior) {
  const int l = dataset.num_choices();

  // Class prior from expected class counts.
  std::fill(class_prior.begin(), class_prior.end(), config.prior_class);
  for (data::TaskId t = 0; t < dataset.num_tasks(); ++t) {
    if (dataset.AnswersForTask(t).empty()) continue;
    for (int j = 0; j < l; ++j) class_prior[j] += posterior[t][j];
  }
  double prior_total = 0.0;
  for (double p : class_prior) prior_total += p;
  for (double& p : class_prior) p /= prior_total;

  // Confusion matrices from expected co-occurrence counts.
  for (data::WorkerId w = 0; w < dataset.num_workers(); ++w) {
    auto& matrix = matrices[w];
    for (int j = 0; j < l; ++j) {
      for (int k = 0; k < l; ++k) {
        matrix[j * l + k] =
            config.smoothing + (j == k ? config.prior_diag : config.prior_off);
      }
    }
    for (const data::WorkerVote& vote : dataset.AnswersByWorker(w)) {
      for (int j = 0; j < l; ++j) {
        matrix[j * l + vote.label] += posterior[vote.task][j];
      }
    }
    for (int j = 0; j < l; ++j) {
      double row_total = 0.0;
      for (int k = 0; k < l; ++k) row_total += matrix[j * l + k];
      for (int k = 0; k < l; ++k) matrix[j * l + k] /= row_total;
    }
  }
}

void EStep(const data::CategoricalDataset& dataset,
           const ConfusionMatrices& matrices,
           const std::vector<double>& class_prior, Posterior& posterior) {
  const int l = dataset.num_choices();
  std::vector<double> log_belief(l);
  for (data::TaskId t = 0; t < dataset.num_tasks(); ++t) {
    const auto& votes = dataset.AnswersForTask(t);
    if (votes.empty()) continue;
    for (int j = 0; j < l; ++j) log_belief[j] = std::log(class_prior[j]);
    for (const data::TaskVote& vote : votes) {
      const auto& matrix = matrices[vote.worker];
      for (int j = 0; j < l; ++j) {
        log_belief[j] += std::log(matrix[j * l + vote.label]);
      }
    }
    util::SoftmaxInPlace(log_belief);
    posterior[t] = log_belief;
  }
}

}  // namespace

CategoricalResult RunConfusionEm(const data::CategoricalDataset& dataset,
                                 const InferenceOptions& options,
                                 const ConfusionEmConfig& config) {
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  util::Rng rng(options.seed);

  Posterior posterior = InitialPosterior(dataset, options);
  ConfusionMatrices matrices(num_workers,
                             std::vector<double>(l * l, 1.0 / l));
  std::vector<double> class_prior(l, 1.0 / l);

  // Qualification test: the initial E-step runs with matrices built from
  // the supplied accuracies instead of a vote-count M-step.
  if (!options.initial_worker_quality.empty()) {
    matrices = MatricesFromInitialQuality(options.initial_worker_quality,
                                          num_workers, l);
    EStep(dataset, matrices, class_prior, posterior);
    ClampGolden(dataset, options, posterior);
  }

  CategoricalResult result;
  IterationTracer tracer(options.trace);
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    tracer.BeginIteration();
    MStep(dataset, posterior, config, matrices, class_prior);
    tracer.EndPhase(TracePhase::kQualityStep);
    Posterior next = posterior;
    EStep(dataset, matrices, class_prior, next);
    ClampGolden(dataset, options, next);
    const double change = MaxAbsDiff(posterior, next);
    tracer.EndPhase(TracePhase::kTruthStep);
    posterior = std::move(next);
    result.convergence_trace.push_back(change);
    result.iterations = iteration + 1;
    tracer.EndIteration(result.iterations, change);
    if (change < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.labels = ArgmaxLabels(posterior, rng);
  result.worker_quality.assign(num_workers, 0.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    // Scalar summary: prior-weighted diagonal of the confusion matrix,
    // i.e. the marginal probability of a correct answer.
    double expected_correct = 0.0;
    for (int j = 0; j < l; ++j) {
      expected_correct += class_prior[j] * matrices[w][j * l + j];
    }
    result.worker_quality[w] = expected_correct;
  }
  result.worker_confusion = std::move(matrices);
  result.posterior = std::move(posterior);
  return result;
}

}  // namespace crowdtruth::core::internal
