// ZC / ZenCrowd (Demartini et al., WWW'12; paper §5.3(1)).
//
// Worker model: a single worker probability q^w in [0, 1]. Observation
// model: a worker answers a task correctly with probability q^w and
// otherwise picks one of the remaining l-1 choices uniformly. Inference:
// EM on the likelihood of Eq. 1 —
//   E-step:  mu_i(z) prop-to  prod_{w in W_i} Pr(v_i^w | q^w, v*_i = z)
//   M-step:  q^w = sum_{i in T^w} mu_i(v_i^w) / |T^w|
// Supports qualification-test initialization (q^w <- estimated accuracy)
// and hidden-test golden tasks (posterior clamped; golden truth feeds the
// M-step).
#ifndef CROWDTRUTH_CORE_METHODS_ZC_H_
#define CROWDTRUTH_CORE_METHODS_ZC_H_

#include "core/inference.h"

namespace crowdtruth::core {

class Zc : public CategoricalMethod {
 public:
  std::string name() const override { return "ZC"; }
  CategoricalResult Infer(const data::CategoricalDataset& dataset,
                          const InferenceOptions& options) const override;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_ZC_H_
