#include "core/methods/lfc_features.h"

#include <algorithm>
#include <cmath>

#include "core/common.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/special_functions.h"

namespace crowdtruth::core {
namespace {

constexpr data::LabelId kPositive = 0;  // Label 0 = T, as elsewhere.

double Dot(const std::vector<double>& theta,
           const std::vector<double>& x) {
  // x lacks the intercept slot; theta.back() is the intercept.
  double score = theta.back();
  for (size_t d = 0; d < x.size(); ++d) score += theta[d] * x[d];
  return score;
}

}  // namespace

CategoricalResult LfcFeatures::Infer(const data::CategoricalDataset& dataset,
                                     const InferenceOptions& options) const {
  CROWDTRUTH_CHECK_EQ(dataset.num_choices(), 2)
      << "LFC-Features supports decision-making (binary) tasks only";
  CROWDTRUTH_CHECK(features_ != nullptr);
  const int n = dataset.num_tasks();
  CROWDTRUTH_CHECK_EQ(static_cast<int>(features_->size()), n);
  const int num_workers = dataset.num_workers();
  const int dim = n > 0 ? static_cast<int>((*features_)[0].size()) : 0;
  util::Rng rng(options.seed);

  Posterior posterior = InitialPosterior(dataset, options);
  // Flattened 2x2 confusion matrices and the logistic parameters
  // (theta[dim] is the intercept).
  std::vector<std::vector<double>> matrices(num_workers,
                                            {0.7, 0.3, 0.3, 0.7});
  std::vector<double> theta(dim + 1, 0.0);

  CategoricalResult result;
  std::vector<double> log_belief(2);
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    // M-step 1: confusion matrices with LFC's Dirichlet priors.
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      double counts[4] = {prior_diag_, prior_off_, prior_off_, prior_diag_};
      for (const data::WorkerVote& vote : dataset.AnswersByWorker(w)) {
        counts[0 * 2 + vote.label] += posterior[vote.task][0];
        counts[1 * 2 + vote.label] += posterior[vote.task][1];
      }
      for (int j = 0; j < 2; ++j) {
        const double row_total = counts[j * 2] + counts[j * 2 + 1];
        matrices[w][j * 2] = counts[j * 2] / row_total;
        matrices[w][j * 2 + 1] = counts[j * 2 + 1] / row_total;
      }
    }

    // M-step 2: logistic regression on the soft labels.
    for (int step = 0; step < gradient_steps_; ++step) {
      std::vector<double> gradient(dim + 1, 0.0);
      for (int d = 0; d <= dim; ++d) gradient[d] = -l2_ * theta[d];
      for (data::TaskId t = 0; t < n; ++t) {
        if (dataset.AnswersForTask(t).empty()) continue;
        const double target = posterior[t][kPositive];
        const double predicted =
            util::Sigmoid(Dot(theta, (*features_)[t]));
        const double residual = (target - predicted) / n;
        for (int d = 0; d < dim; ++d) {
          gradient[d] += residual * (*features_)[t][d];
        }
        gradient[dim] += residual;
      }
      // The per-task residuals above are already averaged (mean gradient),
      // so one learning rate works across dataset sizes.
      for (int d = 0; d <= dim; ++d) {
        theta[d] += learning_rate_ * gradient[d];
      }
    }

    // E-step: classifier prior x worker likelihoods.
    Posterior next = posterior;
    for (data::TaskId t = 0; t < n; ++t) {
      const auto& votes = dataset.AnswersForTask(t);
      const double prior_t =
          std::clamp(util::Sigmoid(Dot(theta, (*features_)[t])), 1e-9,
                     1.0 - 1e-9);
      log_belief[0] = std::log(prior_t);
      log_belief[1] = std::log(1.0 - prior_t);
      for (const data::TaskVote& vote : votes) {
        const auto& matrix = matrices[vote.worker];
        log_belief[0] += std::log(std::max(matrix[vote.label], 1e-12));
        log_belief[1] += std::log(std::max(matrix[2 + vote.label], 1e-12));
      }
      util::SoftmaxInPlace(log_belief);
      next[t] = log_belief;
    }
    ClampGolden(dataset, options, next);

    const double change = MaxAbsDiff(posterior, next);
    posterior = std::move(next);
    result.convergence_trace.push_back(change);
    result.iterations = iteration + 1;
    if (change < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.labels = ArgmaxLabels(posterior, rng);
  result.worker_quality.assign(num_workers, 0.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    result.worker_quality[w] = 0.5 * (matrices[w][0] + matrices[w][3]);
  }
  result.worker_confusion = std::move(matrices);
  result.posterior = std::move(posterior);
  return result;
}

}  // namespace crowdtruth::core
