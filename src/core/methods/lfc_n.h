// LFC_N (Raykar et al., JMLR'10; paper §5.3(2) "Task Type"): the numeric
// variant of LFC. Worker model: answers are Gaussian around the truth,
// v_i^w ~ N(v*_i, sigma_w^2). EM alternates
//   variance step: sigma_w^2 = (prior_b + sum (v_i^w - v*_i)^2) /
//                              (prior_a + |T^w|)
//   truth step:    v*_i = precision-weighted mean of the task's answers
// with a weak inverse-gamma prior regularizing the variances of workers
// with few answers.
#ifndef CROWDTRUTH_CORE_METHODS_LFC_N_H_
#define CROWDTRUTH_CORE_METHODS_LFC_N_H_

#include "core/inference.h"

namespace crowdtruth::core {

class LfcNumeric : public NumericMethod {
 public:
  LfcNumeric(double prior_a = 2.0, double prior_b = 2.0)
      : prior_a_(prior_a), prior_b_(prior_b) {}

  std::string name() const override { return "LFC_N"; }
  NumericResult Infer(const data::NumericDataset& dataset,
                      const InferenceOptions& options) const override;

 private:
  double prior_a_;
  double prior_b_;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_LFC_N_H_
