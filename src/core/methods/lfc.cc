#include "core/methods/lfc.h"

#include "core/methods/confusion_em.h"

namespace crowdtruth::core {

CategoricalResult Lfc::Infer(const data::CategoricalDataset& dataset,
                             const InferenceOptions& options) const {
  internal::ConfusionEmConfig config;
  config.method_name = "LFC";
  config.prior_diag = prior_diag_;
  config.prior_off = prior_off_;
  config.prior_class = 1.0;
  return internal::RunConfusionEm(dataset, options, config);
}

}  // namespace crowdtruth::core
