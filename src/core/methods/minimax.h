// Minimax — minimax entropy (Zhou et al., NIPS'12; paper §5.2(3)).
//
// Models, per worker w and task i, a distribution over the answers w would
// give to i:
//   p_iw(k | j) = softmax_k( tau_i[k] + sigma_w[j][k] ),    j = truth of i
// where tau_i captures per-task answer tendencies and sigma_w the worker's
// per-class "diverse skill" matrix. Following the dual of the minimax
// entropy program, inference alternates:
//   labels:     q_i(j) prop-to exp( sum_{w in W_i} log p_iw(v_i^w | j) )
//   parameters: gradient ascent on the expected log-likelihood with L2
//               regularization on tau and sigma (the paper's relaxed
//               constraints).
// The per-iteration gradient solve makes Minimax one of the slowest
// methods, matching the paper's Table 6.
#ifndef CROWDTRUTH_CORE_METHODS_MINIMAX_H_
#define CROWDTRUTH_CORE_METHODS_MINIMAX_H_

#include "core/inference.h"

namespace crowdtruth::core {

class Minimax : public CategoricalMethod {
 public:
  // tau is regularized much more strongly than sigma: otherwise the
  // per-task parameters can absorb each task's empirical answer
  // distribution entirely, leaving no signal for the labels (the paper's
  // dual constraints bound the task side tightly for the same reason).
  Minimax(int gradient_steps = 25, double learning_rate = 0.5,
          double regularization_sigma = 0.005,
          double regularization_tau = 1.0)
      : gradient_steps_(gradient_steps),
        learning_rate_(learning_rate),
        regularization_sigma_(regularization_sigma),
        regularization_tau_(regularization_tau) {}

  std::string name() const override { return "Minimax"; }
  CategoricalResult Infer(const data::CategoricalDataset& dataset,
                          const InferenceOptions& options) const override;

 private:
  int gradient_steps_;
  double learning_rate_;
  double regularization_sigma_;
  double regularization_tau_;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_METHODS_MINIMAX_H_
