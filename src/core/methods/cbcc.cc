#include "core/methods/cbcc.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/common.h"
#include "core/em_loop.h"
#include "util/rng.h"

namespace crowdtruth::core {

CategoricalResult Cbcc::Infer(const data::CategoricalDataset& dataset,
                              const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  const int m = num_communities_;
  const data::CategoricalCsr& csr = dataset.csr();
  util::Rng rng(options.seed);

  std::vector<data::LabelId> truth = MajorityVoteLabels(dataset, options, rng);
  std::vector<int> community(num_workers);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    community[w] = rng.UniformInt(0, m - 1);
  }
  // log_confusion[c][j*l+k]: community c's representative matrix.
  std::vector<std::vector<double>> log_confusion(
      m, std::vector<double>(l * l, std::log(1.0 / l)));
  std::vector<double> log_class(l, std::log(1.0 / l));
  std::vector<double> log_mixing(m, std::log(1.0 / m));

  std::vector<std::vector<double>> marginal(n, std::vector<double>(l, 0.0));
  std::vector<double> worker_quality_sum(num_workers, 0.0);
  std::vector<std::vector<double>> diag(m, std::vector<double>(l, 0.0));

  std::vector<double> row_counts(l);
  std::vector<double> count_matrix(static_cast<size_t>(l) * l);
  std::vector<double> log_weights_label(l);
  std::vector<double> log_weights_community(m);

  const int total_sweeps = burn_in_ + samples_;
  EmDriver driver = EmDriver::FromOptions(options, "CBCC");
  driver.convergence = EmConvergence::kFixedIterations;
  driver.max_iterations = total_sweeps;
  driver.record_trace = false;

  std::vector<data::LabelId> previous_truth;

  // Both kernels run serially: every sample is drawn from the one
  // sequential RNG stream, so the chain is identical at any thread count.
  std::vector<EmStep> steps;
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    const int sweep = context.iteration();
    if (options.trace != nullptr) previous_truth = truth;
    // Sample community matrices from the pooled counts of their members.
    // One scatter pass over each member's answers replaces the per-class
    // filter passes: each cell still starts at its prior and receives the
    // same ordered sequence of +1.0 adds (members ascending, answers in
    // worker-major order), so the counts and RNG draw order are unchanged.
    for (int c = 0; c < m; ++c) {
      for (int j = 0; j < l; ++j) {
        for (int k = 0; k < l; ++k) {
          count_matrix[j * l + k] = j == k ? prior_diag_ : prior_off_;
        }
      }
      for (data::WorkerId w = 0; w < num_workers; ++w) {
        if (community[w] != c) continue;
        for (int32_t a = csr.worker_offsets[w]; a < csr.worker_offsets[w + 1];
             ++a) {
          count_matrix[truth[csr.worker_tasks[a]] * l +
                       csr.worker_labels[a]] += 1.0;
        }
      }
      for (int j = 0; j < l; ++j) {
        for (int k = 0; k < l; ++k) row_counts[k] = count_matrix[j * l + k];
        const std::vector<double> row = rng.Dirichlet(row_counts);
        for (int k = 0; k < l; ++k) {
          log_confusion[c][j * l + k] = std::log(std::max(row[k], 1e-12));
        }
        diag[c][j] = row[j];
      }
    }

    // Sample mixing weights.
    std::vector<double> mixing_counts(m, 1.0);
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      mixing_counts[community[w]] += 1.0;
    }
    const std::vector<double> mixing = rng.Dirichlet(mixing_counts);
    for (int c = 0; c < m; ++c) {
      log_mixing[c] = std::log(std::max(mixing[c], 1e-12));
    }

    // Sample worker community assignments.
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      log_weights_community = log_mixing;
      for (int32_t a = csr.worker_offsets[w]; a < csr.worker_offsets[w + 1];
           ++a) {
        const int j = truth[csr.worker_tasks[a]];
        const int32_t label = csr.worker_labels[a];
        for (int c = 0; c < m; ++c) {
          log_weights_community[c] += log_confusion[c][j * l + label];
        }
      }
      community[w] = rng.CategoricalFromLog(log_weights_community);
      if (sweep >= burn_in_) {
        double expected_correct = 0.0;
        for (int j = 0; j < l; ++j) expected_correct += diag[community[w]][j];
        worker_quality_sum[w] += expected_correct / l;
      }
    }

    // Sample the class prior.
    std::vector<double> class_counts(l, 1.0);
    for (data::TaskId t = 0; t < n; ++t) {
      if (csr.task_offsets[t] == csr.task_offsets[t + 1]) continue;
      class_counts[truth[t]] += 1.0;
    }
    const std::vector<double> class_prior = rng.Dirichlet(class_counts);
    for (int j = 0; j < l; ++j) {
      log_class[j] = std::log(std::max(class_prior[j], 1e-12));
    }
  }});
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    const int sweep = context.iteration();
    // Sample task truths through community matrices.
    for (data::TaskId t = 0; t < n; ++t) {
      const int32_t begin = csr.task_offsets[t];
      const int32_t end = csr.task_offsets[t + 1];
      if (begin == end) continue;
      log_weights_label = log_class;
      for (int32_t a = begin; a < end; ++a) {
        const auto& matrix = log_confusion[community[csr.task_workers[a]]];
        const int32_t label = csr.task_labels[a];
        for (int j = 0; j < l; ++j) {
          log_weights_label[j] += matrix[j * l + label];
        }
      }
      truth[t] = rng.CategoricalFromLog(log_weights_label);
      if (sweep >= burn_in_) marginal[t][truth[t]] += 1.0;
    }
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool delta_needed) {
                         if (!delta_needed) return 0.0;
                         int flips = 0;
                         for (data::TaskId t = 0; t < n; ++t) {
                           if (truth[t] != previous_truth[t]) ++flips;
                         }
                         return static_cast<double>(flips) / std::max(n, 1);
                       }),
             &result);

  result.iterations = total_sweeps;
  result.converged = true;
  for (data::TaskId t = 0; t < n; ++t) {
    double total = 0.0;
    for (int j = 0; j < l; ++j) total += marginal[t][j];
    if (total > 0.0) {
      for (int j = 0; j < l; ++j) marginal[t][j] /= total;
    } else {
      for (int j = 0; j < l; ++j) marginal[t][j] = 1.0 / l;
    }
  }
  result.labels = ArgmaxLabels(marginal, rng);
  result.posterior = std::move(marginal);
  result.worker_quality.assign(num_workers, 0.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    result.worker_quality[w] = worker_quality_sum[w] / samples_;
  }
  return result;
}

}  // namespace crowdtruth::core
