#include "core/methods/cbcc.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/common.h"
#include "core/em_loop.h"
#include "util/rng.h"

namespace crowdtruth::core {

CategoricalResult Cbcc::Infer(const data::CategoricalDataset& dataset,
                              const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  const int m = num_communities_;
  util::Rng rng(options.seed);

  std::vector<data::LabelId> truth = MajorityVoteLabels(dataset, options, rng);
  std::vector<int> community(num_workers);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    community[w] = rng.UniformInt(0, m - 1);
  }
  // log_confusion[c][j*l+k]: community c's representative matrix.
  std::vector<std::vector<double>> log_confusion(
      m, std::vector<double>(l * l, std::log(1.0 / l)));
  std::vector<double> log_class(l, std::log(1.0 / l));
  std::vector<double> log_mixing(m, std::log(1.0 / m));

  std::vector<std::vector<double>> marginal(n, std::vector<double>(l, 0.0));
  std::vector<double> worker_quality_sum(num_workers, 0.0);
  std::vector<std::vector<double>> diag(m, std::vector<double>(l, 0.0));

  std::vector<double> row_counts(l);
  std::vector<double> log_weights_label(l);
  std::vector<double> log_weights_community(m);

  const int total_sweeps = burn_in_ + samples_;
  EmDriver driver = EmDriver::FromOptions(options, "CBCC");
  driver.convergence = EmConvergence::kFixedIterations;
  driver.max_iterations = total_sweeps;
  driver.record_trace = false;

  std::vector<data::LabelId> previous_truth;

  // Both kernels run serially: every sample is drawn from the one
  // sequential RNG stream, so the chain is identical at any thread count.
  std::vector<EmStep> steps;
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    const int sweep = context.iteration();
    if (options.trace != nullptr) previous_truth = truth;
    // Sample community matrices from the pooled counts of their members.
    for (int c = 0; c < m; ++c) {
      for (int j = 0; j < l; ++j) {
        for (int k = 0; k < l; ++k) {
          row_counts[k] = j == k ? prior_diag_ : prior_off_;
        }
        for (data::WorkerId w = 0; w < num_workers; ++w) {
          if (community[w] != c) continue;
          for (const data::WorkerVote& vote : dataset.AnswersByWorker(w)) {
            if (truth[vote.task] == j) row_counts[vote.label] += 1.0;
          }
        }
        const std::vector<double> row = rng.Dirichlet(row_counts);
        for (int k = 0; k < l; ++k) {
          log_confusion[c][j * l + k] = std::log(std::max(row[k], 1e-12));
        }
        diag[c][j] = row[j];
      }
    }

    // Sample mixing weights.
    std::vector<double> mixing_counts(m, 1.0);
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      mixing_counts[community[w]] += 1.0;
    }
    const std::vector<double> mixing = rng.Dirichlet(mixing_counts);
    for (int c = 0; c < m; ++c) {
      log_mixing[c] = std::log(std::max(mixing[c], 1e-12));
    }

    // Sample worker community assignments.
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      log_weights_community = log_mixing;
      for (const data::WorkerVote& vote : dataset.AnswersByWorker(w)) {
        const int j = truth[vote.task];
        for (int c = 0; c < m; ++c) {
          log_weights_community[c] += log_confusion[c][j * l + vote.label];
        }
      }
      community[w] = rng.CategoricalFromLog(log_weights_community);
      if (sweep >= burn_in_) {
        double expected_correct = 0.0;
        for (int j = 0; j < l; ++j) expected_correct += diag[community[w]][j];
        worker_quality_sum[w] += expected_correct / l;
      }
    }

    // Sample the class prior.
    std::vector<double> class_counts(l, 1.0);
    for (data::TaskId t = 0; t < n; ++t) {
      if (dataset.AnswersForTask(t).empty()) continue;
      class_counts[truth[t]] += 1.0;
    }
    const std::vector<double> class_prior = rng.Dirichlet(class_counts);
    for (int j = 0; j < l; ++j) {
      log_class[j] = std::log(std::max(class_prior[j], 1e-12));
    }
  }});
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    const int sweep = context.iteration();
    // Sample task truths through community matrices.
    for (data::TaskId t = 0; t < n; ++t) {
      const auto& votes = dataset.AnswersForTask(t);
      if (votes.empty()) continue;
      log_weights_label = log_class;
      for (const data::TaskVote& vote : votes) {
        const auto& matrix = log_confusion[community[vote.worker]];
        for (int j = 0; j < l; ++j) {
          log_weights_label[j] += matrix[j * l + vote.label];
        }
      }
      truth[t] = rng.CategoricalFromLog(log_weights_label);
      if (sweep >= burn_in_) marginal[t][truth[t]] += 1.0;
    }
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool delta_needed) {
                         if (!delta_needed) return 0.0;
                         int flips = 0;
                         for (data::TaskId t = 0; t < n; ++t) {
                           if (truth[t] != previous_truth[t]) ++flips;
                         }
                         return static_cast<double>(flips) / std::max(n, 1);
                       }),
             &result);

  result.iterations = total_sweeps;
  result.converged = true;
  for (data::TaskId t = 0; t < n; ++t) {
    double total = 0.0;
    for (int j = 0; j < l; ++j) total += marginal[t][j];
    if (total > 0.0) {
      for (int j = 0; j < l; ++j) marginal[t][j] /= total;
    } else {
      for (int j = 0; j < l; ++j) marginal[t][j] = 1.0 / l;
    }
  }
  result.labels = ArgmaxLabels(marginal, rng);
  result.posterior = std::move(marginal);
  result.worker_quality.assign(num_workers, 0.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    result.worker_quality[w] = worker_quality_sum[w] / samples_;
  }
  return result;
}

}  // namespace crowdtruth::core
