#include "core/methods/ds.h"

#include "core/methods/confusion_em.h"

namespace crowdtruth::core {

CategoricalResult DawidSkene::Infer(const data::CategoricalDataset& dataset,
                                    const InferenceOptions& options) const {
  internal::ConfusionEmConfig config;  // Pure MLE: no informative priors.
  config.method_name = "D&S";
  return internal::RunConfusionEm(dataset, options, config);
}

}  // namespace crowdtruth::core
