#include "core/methods/vi_bp.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/common.h"
#include "core/em_loop.h"
#include "util/logging.h"
#include "util/rng.h"

namespace crowdtruth::core {

CategoricalResult ViBp::Infer(const data::CategoricalDataset& dataset,
                              const InferenceOptions& options) const {
  CROWDTRUTH_CHECK_EQ(dataset.num_choices(), 2)
      << "VI-BP supports decision-making (binary) tasks only";
  const int n = dataset.num_tasks();
  const int num_workers = dataset.num_workers();
  util::Rng rng(options.seed);

  struct Edge {
    data::TaskId task;
    data::WorkerId worker;
    data::LabelId label;
  };
  std::vector<Edge> edges;
  std::vector<std::vector<int>> task_edges(n);
  std::vector<std::vector<int>> worker_edges(num_workers);
  for (data::TaskId t = 0; t < n; ++t) {
    for (const data::TaskVote& vote : dataset.AnswersForTask(t)) {
      task_edges[t].push_back(static_cast<int>(edges.size()));
      worker_edges[vote.worker].push_back(static_cast<int>(edges.size()));
      edges.push_back({t, vote.worker, vote.label});
    }
  }

  // task_msg[e] = m_{i->w}(truth = answer on edge e), a scalar because the
  // binary message is determined by its "matches the worker's answer"
  // component. Initialized from the task's vote share.
  std::vector<double> task_msg(edges.size(), 0.5);
  for (data::TaskId t = 0; t < n; ++t) {
    if (task_edges[t].empty()) continue;
    int count0 = 0;
    for (int e : task_edges[t]) {
      if (edges[e].label == 0) ++count0;
    }
    const double share0 =
        static_cast<double>(count0) / task_edges[t].size();
    for (int e : task_edges[t]) {
      task_msg[e] = edges[e].label == 0 ? share0 : 1.0 - share0;
    }
  }
  // worker_msg[e] = m_{w->i}(truth = answer on edge e).
  std::vector<double> worker_msg(edges.size(), 0.5);

  std::vector<double> expected_reliability(num_workers, 0.5);
  const EmDriver driver = EmDriver::FromOptions(options, "VI-BP");
  // Per-task max message change; measure() folds these into the round's
  // delta (max is order-independent, so the fold stays deterministic).
  std::vector<double> task_change(n, 0.0);

  std::vector<EmStep> steps;
  // Worker -> task: posterior-mean reliability from the other edges. Each
  // worker owns its edges' worker_msg entries.
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    context.ParallelShards(num_workers, [&](int w, int) {
      double correct_total = 0.0;
      for (int e : worker_edges[w]) correct_total += task_msg[e];
      const double count = static_cast<double>(worker_edges[w].size());
      for (int e : worker_edges[w]) {
        const double correct_others = correct_total - task_msg[e];
        const double incorrect_others = (count - 1.0) - correct_others;
        const double a = prior_alpha_ + correct_others;
        const double b = prior_beta_ + incorrect_others;
        worker_msg[e] = a / (a + b);
      }
      const double a_full = prior_alpha_ + correct_total;
      const double b_full = prior_beta_ + (count - correct_total);
      expected_reliability[w] = a_full / (a_full + b_full);
    });
  }});
  // Task -> worker: combine the other workers' messages (log space).
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    context.ParallelShards(n, [&](int t, int) {
      task_change[t] = 0.0;
      if (task_edges[t].empty()) return;
      double log_total0 = 0.0;
      double log_total1 = 0.0;
      for (int e : task_edges[t]) {
        const double match = std::clamp(worker_msg[e], 1e-9, 1.0 - 1e-9);
        // Message as a distribution over {choice0, choice1}.
        const double m0 = edges[e].label == 0 ? match : 1.0 - match;
        log_total0 += std::log(m0);
        log_total1 += std::log(1.0 - m0);
      }
      for (int e : task_edges[t]) {
        const double match = std::clamp(worker_msg[e], 1e-9, 1.0 - 1e-9);
        const double m0 = edges[e].label == 0 ? match : 1.0 - match;
        const double log0 = log_total0 - std::log(m0);
        const double log1 = log_total1 - std::log(1.0 - m0);
        const double belief0 = 1.0 / (1.0 + std::exp(log1 - log0));
        const double next =
            edges[e].label == 0 ? belief0 : 1.0 - belief0;
        task_change[t] =
            std::max(task_change[t], std::fabs(next - task_msg[e]));
        task_msg[e] = next;
      }
    });
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool) {
                         double change = 0.0;
                         for (data::TaskId t = 0; t < n; ++t) {
                           change = std::max(change, task_change[t]);
                         }
                         return change;
                       }),
             &result);

  // Final beliefs combine all worker messages.
  result.labels.assign(n, 0);
  result.posterior.assign(n, {0.5, 0.5});
  for (data::TaskId t = 0; t < n; ++t) {
    if (task_edges[t].empty()) {
      result.labels[t] = rng.UniformInt(0, 1);
      continue;
    }
    double log0 = 0.0;
    double log1 = 0.0;
    for (int e : task_edges[t]) {
      const double match = std::clamp(worker_msg[e], 1e-9, 1.0 - 1e-9);
      const double m0 = edges[e].label == 0 ? match : 1.0 - match;
      log0 += std::log(m0);
      log1 += std::log(1.0 - m0);
    }
    const double belief0 = 1.0 / (1.0 + std::exp(log1 - log0));
    result.posterior[t] = {belief0, 1.0 - belief0};
    if (belief0 > 0.5) {
      result.labels[t] = 0;
    } else if (belief0 < 0.5) {
      result.labels[t] = 1;
    } else {
      result.labels[t] = rng.UniformInt(0, 1);
    }
  }
  result.worker_quality = std::move(expected_reliability);
  return result;
}

}  // namespace crowdtruth::core
