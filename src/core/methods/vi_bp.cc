#include "core/methods/vi_bp.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/common.h"
#include "core/em_loop.h"
#include "util/logging.h"
#include "util/rng.h"

namespace crowdtruth::core {

CategoricalResult ViBp::Infer(const data::CategoricalDataset& dataset,
                              const InferenceOptions& options) const {
  CROWDTRUTH_CHECK_EQ(dataset.num_choices(), 2)
      << "VI-BP supports decision-making (binary) tasks only";
  const int n = dataset.num_tasks();
  const int num_workers = dataset.num_workers();
  const data::CategoricalCsr& csr = dataset.csr();
  util::Rng rng(options.seed);

  // An edge IS a task-major CSR position; the task-side loops stream
  // csr.task_offsets directly. The worker-side edge lists are rebuilt in
  // task-ascending order (matching the original edge flattening, not the
  // worker-major insertion order) so each worker's message reduction keeps
  // its exact summation order.
  const int num_edges = csr.num_answers();
  std::vector<int32_t> worker_edge(num_edges);
  {
    std::vector<int32_t> cursor(csr.worker_offsets.begin(),
                                csr.worker_offsets.end() - 1);
    for (data::TaskId t = 0; t < n; ++t) {
      for (int32_t a = csr.task_offsets[t]; a < csr.task_offsets[t + 1];
           ++a) {
        worker_edge[cursor[csr.task_workers[a]]++] = a;
      }
    }
  }

  // task_msg[e] = m_{i->w}(truth = answer on edge e), a scalar because the
  // binary message is determined by its "matches the worker's answer"
  // component. Initialized from the task's vote share.
  std::vector<double> task_msg(num_edges, 0.5);
  for (data::TaskId t = 0; t < n; ++t) {
    const int32_t begin = csr.task_offsets[t];
    const int32_t end = csr.task_offsets[t + 1];
    if (begin == end) continue;
    int count0 = 0;
    for (int32_t e = begin; e < end; ++e) {
      if (csr.task_labels[e] == 0) ++count0;
    }
    const double share0 = static_cast<double>(count0) / (end - begin);
    for (int32_t e = begin; e < end; ++e) {
      task_msg[e] = csr.task_labels[e] == 0 ? share0 : 1.0 - share0;
    }
  }
  // worker_msg[e] = m_{w->i}(truth = answer on edge e).
  std::vector<double> worker_msg(num_edges, 0.5);

  std::vector<double> expected_reliability(num_workers, 0.5);
  const EmDriver driver = EmDriver::FromOptions(options, "VI-BP");
  // Per-task max message change; measure() folds these into the round's
  // delta (max is order-independent, so the fold stays deterministic).
  std::vector<double> task_change(n, 0.0);

  std::vector<EmStep> steps;
  // Worker -> task: posterior-mean reliability from the other edges. Each
  // worker owns its edges' worker_msg entries.
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    context.ParallelShards(num_workers, [&](int w, int) {
      const int32_t begin = csr.worker_offsets[w];
      const int32_t end = csr.worker_offsets[w + 1];
      double correct_total = 0.0;
      for (int32_t i = begin; i < end; ++i) {
        correct_total += task_msg[worker_edge[i]];
      }
      const double count = static_cast<double>(end - begin);
      for (int32_t i = begin; i < end; ++i) {
        const int32_t e = worker_edge[i];
        const double correct_others = correct_total - task_msg[e];
        const double incorrect_others = (count - 1.0) - correct_others;
        const double a = prior_alpha_ + correct_others;
        const double b = prior_beta_ + incorrect_others;
        worker_msg[e] = a / (a + b);
      }
      const double a_full = prior_alpha_ + correct_total;
      const double b_full = prior_beta_ + (count - correct_total);
      expected_reliability[w] = a_full / (a_full + b_full);
    });
  }});
  // Task -> worker: combine the other workers' messages (log space).
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    context.ParallelShards(n, [&](int t, int) {
      task_change[t] = 0.0;
      const int32_t begin = csr.task_offsets[t];
      const int32_t end = csr.task_offsets[t + 1];
      if (begin == end) return;
      double log_total0 = 0.0;
      double log_total1 = 0.0;
      for (int32_t e = begin; e < end; ++e) {
        const double match = std::clamp(worker_msg[e], 1e-9, 1.0 - 1e-9);
        // Message as a distribution over {choice0, choice1}.
        const double m0 = csr.task_labels[e] == 0 ? match : 1.0 - match;
        log_total0 += std::log(m0);
        log_total1 += std::log(1.0 - m0);
      }
      for (int32_t e = begin; e < end; ++e) {
        const double match = std::clamp(worker_msg[e], 1e-9, 1.0 - 1e-9);
        const double m0 = csr.task_labels[e] == 0 ? match : 1.0 - match;
        const double log0 = log_total0 - std::log(m0);
        const double log1 = log_total1 - std::log(1.0 - m0);
        const double belief0 = 1.0 / (1.0 + std::exp(log1 - log0));
        const double next =
            csr.task_labels[e] == 0 ? belief0 : 1.0 - belief0;
        task_change[t] =
            std::max(task_change[t], std::fabs(next - task_msg[e]));
        task_msg[e] = next;
      }
    });
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool) {
                         double change = 0.0;
                         for (data::TaskId t = 0; t < n; ++t) {
                           change = std::max(change, task_change[t]);
                         }
                         return change;
                       }),
             &result);

  // Final beliefs combine all worker messages.
  result.labels.assign(n, 0);
  result.posterior.assign(n, {0.5, 0.5});
  for (data::TaskId t = 0; t < n; ++t) {
    const int32_t begin = csr.task_offsets[t];
    const int32_t end = csr.task_offsets[t + 1];
    if (begin == end) {
      result.labels[t] = rng.UniformInt(0, 1);
      continue;
    }
    double log0 = 0.0;
    double log1 = 0.0;
    for (int32_t e = begin; e < end; ++e) {
      const double match = std::clamp(worker_msg[e], 1e-9, 1.0 - 1e-9);
      const double m0 = csr.task_labels[e] == 0 ? match : 1.0 - match;
      log0 += std::log(m0);
      log1 += std::log(1.0 - m0);
    }
    const double belief0 = 1.0 / (1.0 + std::exp(log1 - log0));
    result.posterior[t] = {belief0, 1.0 - belief0};
    if (belief0 > 0.5) {
      result.labels[t] = 0;
    } else if (belief0 < 0.5) {
      result.labels[t] = 1;
    } else {
      result.labels[t] = rng.UniformInt(0, 1);
    }
  }
  result.worker_quality = std::move(expected_reliability);
  return result;
}

}  // namespace crowdtruth::core
