#include "core/methods/vi_bp.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/common.h"
#include "core/trace.h"
#include "util/logging.h"
#include "util/rng.h"

namespace crowdtruth::core {

CategoricalResult ViBp::Infer(const data::CategoricalDataset& dataset,
                              const InferenceOptions& options) const {
  CROWDTRUTH_CHECK_EQ(dataset.num_choices(), 2)
      << "VI-BP supports decision-making (binary) tasks only";
  const int n = dataset.num_tasks();
  const int num_workers = dataset.num_workers();
  util::Rng rng(options.seed);

  struct Edge {
    data::TaskId task;
    data::WorkerId worker;
    data::LabelId label;
  };
  std::vector<Edge> edges;
  std::vector<std::vector<int>> task_edges(n);
  std::vector<std::vector<int>> worker_edges(num_workers);
  for (data::TaskId t = 0; t < n; ++t) {
    for (const data::TaskVote& vote : dataset.AnswersForTask(t)) {
      task_edges[t].push_back(static_cast<int>(edges.size()));
      worker_edges[vote.worker].push_back(static_cast<int>(edges.size()));
      edges.push_back({t, vote.worker, vote.label});
    }
  }

  // task_msg[e] = m_{i->w}(truth = answer on edge e), a scalar because the
  // binary message is determined by its "matches the worker's answer"
  // component. Initialized from the task's vote share.
  std::vector<double> task_msg(edges.size(), 0.5);
  for (data::TaskId t = 0; t < n; ++t) {
    if (task_edges[t].empty()) continue;
    int count0 = 0;
    for (int e : task_edges[t]) {
      if (edges[e].label == 0) ++count0;
    }
    const double share0 =
        static_cast<double>(count0) / task_edges[t].size();
    for (int e : task_edges[t]) {
      task_msg[e] = edges[e].label == 0 ? share0 : 1.0 - share0;
    }
  }
  // worker_msg[e] = m_{w->i}(truth = answer on edge e).
  std::vector<double> worker_msg(edges.size(), 0.5);

  CategoricalResult result;
  std::vector<double> expected_reliability(num_workers, 0.5);
  IterationTracer tracer(options.trace);
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    tracer.BeginIteration();
    // Worker -> task: posterior-mean reliability from the other edges.
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      double correct_total = 0.0;
      for (int e : worker_edges[w]) correct_total += task_msg[e];
      const double count = static_cast<double>(worker_edges[w].size());
      for (int e : worker_edges[w]) {
        const double correct_others = correct_total - task_msg[e];
        const double incorrect_others = (count - 1.0) - correct_others;
        const double a = prior_alpha_ + correct_others;
        const double b = prior_beta_ + incorrect_others;
        worker_msg[e] = a / (a + b);
      }
      const double a_full = prior_alpha_ + correct_total;
      const double b_full = prior_beta_ + (count - correct_total);
      expected_reliability[w] = a_full / (a_full + b_full);
    }
    tracer.EndPhase(TracePhase::kQualityStep);

    // Task -> worker: combine the other workers' messages (log space).
    double change = 0.0;
    for (data::TaskId t = 0; t < n; ++t) {
      if (task_edges[t].empty()) continue;
      double log_total0 = 0.0;
      double log_total1 = 0.0;
      for (int e : task_edges[t]) {
        const double match = std::clamp(worker_msg[e], 1e-9, 1.0 - 1e-9);
        // Message as a distribution over {choice0, choice1}.
        const double m0 = edges[e].label == 0 ? match : 1.0 - match;
        log_total0 += std::log(m0);
        log_total1 += std::log(1.0 - m0);
      }
      for (int e : task_edges[t]) {
        const double match = std::clamp(worker_msg[e], 1e-9, 1.0 - 1e-9);
        const double m0 = edges[e].label == 0 ? match : 1.0 - match;
        const double log0 = log_total0 - std::log(m0);
        const double log1 = log_total1 - std::log(1.0 - m0);
        const double belief0 = 1.0 / (1.0 + std::exp(log1 - log0));
        const double next =
            edges[e].label == 0 ? belief0 : 1.0 - belief0;
        change = std::max(change, std::fabs(next - task_msg[e]));
        task_msg[e] = next;
      }
    }

    tracer.EndPhase(TracePhase::kTruthStep);

    result.convergence_trace.push_back(change);
    result.iterations = iteration + 1;
    tracer.EndIteration(result.iterations, change);
    if (change < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Final beliefs combine all worker messages.
  result.labels.assign(n, 0);
  result.posterior.assign(n, {0.5, 0.5});
  for (data::TaskId t = 0; t < n; ++t) {
    if (task_edges[t].empty()) {
      result.labels[t] = rng.UniformInt(0, 1);
      continue;
    }
    double log0 = 0.0;
    double log1 = 0.0;
    for (int e : task_edges[t]) {
      const double match = std::clamp(worker_msg[e], 1e-9, 1.0 - 1e-9);
      const double m0 = edges[e].label == 0 ? match : 1.0 - match;
      log0 += std::log(m0);
      log1 += std::log(1.0 - m0);
    }
    const double belief0 = 1.0 / (1.0 + std::exp(log1 - log0));
    result.posterior[t] = {belief0, 1.0 - belief0};
    if (belief0 > 0.5) {
      result.labels[t] = 0;
    } else if (belief0 < 0.5) {
      result.labels[t] = 1;
    } else {
      result.labels[t] = rng.UniformInt(0, 1);
    }
  }
  result.worker_quality = std::move(expected_reliability);
  return result;
}

}  // namespace crowdtruth::core
