#include "core/methods/zc.h"

#include <algorithm>
#include <cmath>

#include "core/common.h"
#include "core/trace.h"
#include "util/rng.h"
#include "util/special_functions.h"

namespace crowdtruth::core {
namespace {

// Worker probabilities are kept away from {0, 1} so log-likelihoods stay
// finite and a single worker can never fully determine a task.
constexpr double kQualityFloor = 1e-3;

}  // namespace

CategoricalResult Zc::Infer(const data::CategoricalDataset& dataset,
                            const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  util::Rng rng(options.seed);

  Posterior posterior = InitialPosterior(dataset, options);
  std::vector<double> quality(num_workers, 0.7);
  if (!options.initial_worker_quality.empty()) {
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      quality[w] = std::clamp(options.initial_worker_quality[w],
                              kQualityFloor, 1.0 - kQualityFloor);
    }
  }

  CategoricalResult result;
  std::vector<double> log_belief(l);
  IterationTracer tracer(options.trace);
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    tracer.BeginIteration();
    // M-step: re-estimate worker probabilities from the current belief.
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      const auto& votes = dataset.AnswersByWorker(w);
      if (votes.empty()) continue;
      double expected_correct = 0.0;
      for (const data::WorkerVote& vote : votes) {
        expected_correct += posterior[vote.task][vote.label];
      }
      quality[w] = std::clamp(expected_correct / votes.size(), kQualityFloor,
                              1.0 - kQualityFloor);
    }
    tracer.EndPhase(TracePhase::kQualityStep);

    // E-step: recompute the task belief from worker probabilities.
    Posterior next = posterior;
    for (data::TaskId t = 0; t < n; ++t) {
      const auto& votes = dataset.AnswersForTask(t);
      if (votes.empty()) continue;
      std::fill(log_belief.begin(), log_belief.end(), 0.0);
      for (const data::TaskVote& vote : votes) {
        const double q = quality[vote.worker];
        const double log_wrong = std::log((1.0 - q) / (l - 1));
        const double log_right = std::log(q);
        for (int z = 0; z < l; ++z) {
          log_belief[z] += vote.label == z ? log_right : log_wrong;
        }
      }
      util::SoftmaxInPlace(log_belief);
      next[t] = log_belief;
    }
    ClampGolden(dataset, options, next);

    const double change = MaxAbsDiff(posterior, next);
    tracer.EndPhase(TracePhase::kTruthStep);
    posterior = std::move(next);
    result.convergence_trace.push_back(change);
    result.iterations = iteration + 1;
    tracer.EndIteration(result.iterations, change);
    if (change < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.labels = ArgmaxLabels(posterior, rng);
  result.posterior = std::move(posterior);
  result.worker_quality = std::move(quality);
  return result;
}

}  // namespace crowdtruth::core
