#include "core/methods/zc.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "core/common.h"
#include "core/em_loop.h"
#include "util/rng.h"
#include "util/safe_math.h"
#include "util/special_functions.h"

namespace crowdtruth::core {
namespace {

// Worker probabilities are kept away from {0, 1} so log-likelihoods stay
// finite and a single worker can never fully determine a task.
constexpr double kQualityFloor = 1e-3;

}  // namespace

CategoricalResult Zc::Infer(const data::CategoricalDataset& dataset,
                            const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  const data::CategoricalCsr& csr = dataset.csr();
  util::Rng rng(options.seed);

  // Flat n*l row-major belief array: one contiguous block instead of a
  // heap vector per task, so the quality step's per-answer reads are a
  // single indirection. Same arithmetic per row — same bits.
  std::vector<double> posterior(static_cast<size_t>(n) * l);
  {
    const Posterior initial = InitialPosterior(dataset, options);
    for (data::TaskId t = 0; t < n; ++t) {
      std::copy(initial[t].begin(), initial[t].end(),
                posterior.begin() + static_cast<size_t>(t) * l);
    }
  }
  std::vector<double> quality(num_workers, 0.7);
  if (!options.initial_worker_quality.empty()) {
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      quality[w] =
          util::ClampProb(options.initial_worker_quality[w], kQualityFloor);
    }
  }
  // Per-worker log tables refreshed by the quality step. Hoisting the two
  // SafeLog calls out of the truth step's per-answer loop turns |V| * 2
  // transcendental calls per iteration into num_workers * 2 — same inputs,
  // so the doubles (and the goldens) are bitwise unchanged.
  std::vector<double> log_right(num_workers);
  std::vector<double> log_wrong(num_workers);

  const EmDriver driver = EmDriver::FromOptions(options, "ZC");
  std::vector<std::vector<double>> log_belief(driver.num_threads,
                                              std::vector<double>(l));
  std::vector<double> next;

  std::vector<EmStep> steps;
  // M-step: re-estimate worker probabilities from the current belief.
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    context.ParallelShards(num_workers, [&](int w, int) {
      const int32_t begin = csr.worker_offsets[w];
      const int32_t end = csr.worker_offsets[w + 1];
      if (begin != end) {
        double expected_correct = 0.0;
        for (int32_t a = begin; a < end; ++a) {
          expected_correct +=
              posterior[csr.worker_tasks[a] * l + csr.worker_labels[a]];
        }
        quality[w] =
            util::ClampProb(expected_correct / (end - begin), kQualityFloor);
      }
      // ClampProb keeps q inside [floor, 1 - floor], so both logs are
      // finite; SafeLog guards the boundary all the same (a saturated
      // quality must never poison the posterior).
      const double q = quality[w];
      log_wrong[w] = util::SafeLog((1.0 - q) / (l - 1));
      log_right[w] = util::SafeLog(q);
    });
  }});
  // E-step: recompute the task belief from worker probabilities.
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    next = posterior;  // Answerless tasks keep their belief.
    context.ParallelShards(n, [&](int t, int slot) {
      const int32_t begin = csr.task_offsets[t];
      const int32_t end = csr.task_offsets[t + 1];
      if (begin == end) return;
      std::vector<double>& belief = log_belief[slot];
      std::fill(belief.begin(), belief.end(), 0.0);
      for (int32_t a = begin; a < end; ++a) {
        const double right = log_right[csr.task_workers[a]];
        const double wrong = log_wrong[csr.task_workers[a]];
        const int32_t label = csr.task_labels[a];
        for (int z = 0; z < l; ++z) {
          belief[z] += label == z ? right : wrong;
        }
      }
      util::SoftmaxInPlace(belief);
      std::copy(belief.begin(), belief.end(),
                next.begin() + static_cast<size_t>(t) * l);
    });
    if (HasGoldenLabels(dataset, options)) {
      for (data::TaskId t = 0; t < n; ++t) {
        const data::LabelId g = options.golden_labels[t];
        if (g == data::kNoTruth) continue;
        std::fill(next.begin() + static_cast<size_t>(t) * l,
                  next.begin() + static_cast<size_t>(t + 1) * l, 0.0);
        next[static_cast<size_t>(t) * l + g] = 1.0;
      }
    }
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool) {
                         double change = 0.0;
                         for (size_t i = 0; i < posterior.size(); ++i) {
                           change = std::max(change,
                                             std::fabs(posterior[i] - next[i]));
                         }
                         posterior.swap(next);
                         return change;
                       }),
             &result);

  Posterior posterior_rows(n, std::vector<double>(l));
  for (data::TaskId t = 0; t < n; ++t) {
    std::copy(posterior.begin() + static_cast<size_t>(t) * l,
              posterior.begin() + static_cast<size_t>(t + 1) * l,
              posterior_rows[t].begin());
  }
  result.labels = ArgmaxLabels(posterior_rows, rng);
  result.posterior = std::move(posterior_rows);
  result.worker_quality = std::move(quality);
  return result;
}

}  // namespace crowdtruth::core
