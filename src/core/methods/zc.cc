#include "core/methods/zc.h"

#include <algorithm>
#include <cmath>

#include "core/common.h"
#include "core/em_loop.h"
#include "util/rng.h"
#include "util/safe_math.h"
#include "util/special_functions.h"

namespace crowdtruth::core {
namespace {

// Worker probabilities are kept away from {0, 1} so log-likelihoods stay
// finite and a single worker can never fully determine a task.
constexpr double kQualityFloor = 1e-3;

}  // namespace

CategoricalResult Zc::Infer(const data::CategoricalDataset& dataset,
                            const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  util::Rng rng(options.seed);

  Posterior posterior = InitialPosterior(dataset, options);
  std::vector<double> quality(num_workers, 0.7);
  if (!options.initial_worker_quality.empty()) {
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      quality[w] =
          util::ClampProb(options.initial_worker_quality[w], kQualityFloor);
    }
  }

  const EmDriver driver = EmDriver::FromOptions(options, "ZC");
  std::vector<std::vector<double>> log_belief(driver.num_threads,
                                              std::vector<double>(l));
  Posterior next;

  std::vector<EmStep> steps;
  // M-step: re-estimate worker probabilities from the current belief.
  steps.push_back({TracePhase::kQualityStep, [&](const EmContext& context) {
    context.ParallelShards(num_workers, [&](int w, int) {
      const auto& votes = dataset.AnswersByWorker(w);
      if (votes.empty()) return;
      double expected_correct = 0.0;
      for (const data::WorkerVote& vote : votes) {
        expected_correct += posterior[vote.task][vote.label];
      }
      quality[w] =
          util::ClampProb(expected_correct / votes.size(), kQualityFloor);
    });
  }});
  // E-step: recompute the task belief from worker probabilities.
  steps.push_back({TracePhase::kTruthStep, [&](const EmContext& context) {
    next = posterior;
    context.ParallelShards(n, [&](int t, int slot) {
      const auto& votes = dataset.AnswersForTask(t);
      if (votes.empty()) return;
      std::vector<double>& belief = log_belief[slot];
      std::fill(belief.begin(), belief.end(), 0.0);
      for (const data::TaskVote& vote : votes) {
        // The quality step clamps q into [floor, 1 - floor], so both logs
        // are finite; SafeLog guards the boundary all the same (a saturated
        // quality must never poison the posterior).
        const double q = quality[vote.worker];
        const double log_wrong = util::SafeLog((1.0 - q) / (l - 1));
        const double log_right = util::SafeLog(q);
        for (int z = 0; z < l; ++z) {
          belief[z] += vote.label == z ? log_right : log_wrong;
        }
      }
      util::SoftmaxInPlace(belief);
      next[t] = belief;
    });
    ClampGolden(dataset, options, next);
  }});

  CategoricalResult result;
  AdoptStats(RunEmLoop(driver, steps,
                       [&](bool) {
                         const double change = MaxAbsDiff(posterior, next);
                         posterior = std::move(next);
                         return change;
                       }),
             &result);

  result.labels = ArgmaxLabels(posterior, rng);
  result.posterior = std::move(posterior);
  result.worker_quality = std::move(quality);
  return result;
}

}  // namespace crowdtruth::core
