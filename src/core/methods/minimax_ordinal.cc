#include "core/methods/minimax_ordinal.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/common.h"
#include "util/rng.h"
#include "util/special_functions.h"

namespace crowdtruth::core {
namespace {

// p(k | j) = softmax_k( tau[k] - alpha * |j - k| + beta * 1{j == k} ).
void AnswerDistribution(const double* tau, double alpha, double beta, int j,
                        int l, std::vector<double>& out) {
  double max_score = -1e300;
  for (int k = 0; k < l; ++k) {
    out[k] = tau[k] - alpha * std::abs(j - k) + (j == k ? beta : 0.0);
    max_score = std::max(max_score, out[k]);
  }
  double total = 0.0;
  for (int k = 0; k < l; ++k) {
    out[k] = std::exp(out[k] - max_score);
    total += out[k];
  }
  for (int k = 0; k < l; ++k) out[k] /= total;
}

}  // namespace

CategoricalResult MinimaxOrdinal::Infer(
    const data::CategoricalDataset& dataset,
    const InferenceOptions& options) const {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const int num_workers = dataset.num_workers();
  util::Rng rng(options.seed);

  Posterior labels = InitialPosterior(dataset, options);
  std::vector<double> tau(static_cast<size_t>(n) * l, 0.0);
  // Start from a "workers answer near the truth" prior: the first label
  // update then pulls toward the (distance-weighted) plurality instead of
  // locking onto arbitrary early parameters.
  std::vector<double> alpha(num_workers, 1.0);
  std::vector<double> beta(num_workers, 1.0);

  std::vector<double> worker_scale(num_workers, 1.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    worker_scale[w] =
        1.0 / std::max<size_t>(dataset.AnswersByWorker(w).size(), 1);
  }
  std::vector<double> task_scale(n, 1.0);
  for (data::TaskId t = 0; t < n; ++t) {
    task_scale[t] =
        1.0 / std::max<size_t>(dataset.AnswersForTask(t).size(), 1);
  }

  std::vector<double> grad_tau(static_cast<size_t>(n) * l);
  std::vector<double> grad_alpha(num_workers);
  std::vector<double> grad_beta(num_workers);
  std::vector<double> p(l);
  std::vector<double> log_belief(l);

  CategoricalResult result;
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    // Parameter update.
    for (int step = 0; step < gradient_steps_; ++step) {
      for (size_t i = 0; i < grad_tau.size(); ++i) {
        grad_tau[i] = -regularization_tau_ * tau[i];
      }
      for (data::WorkerId w = 0; w < num_workers; ++w) {
        grad_alpha[w] = -regularization_worker_ * alpha[w];
        grad_beta[w] = -regularization_worker_ * beta[w];
      }
      for (data::TaskId t = 0; t < n; ++t) {
        for (const data::TaskVote& vote : dataset.AnswersForTask(t)) {
          const data::WorkerId w = vote.worker;
          for (int j = 0; j < l; ++j) {
            const double weight = labels[t][j];
            if (weight < 1e-9) continue;
            AnswerDistribution(&tau[static_cast<size_t>(t) * l], alpha[w],
                               beta[w], j, l, p);
            // d log p(v | j) / d tau[k] = 1{v=k} - p_k.
            for (int k = 0; k < l; ++k) {
              grad_tau[static_cast<size_t>(t) * l + k] +=
                  weight * ((vote.label == k ? 1.0 : 0.0) - p[k]) *
                  task_scale[t];
            }
            // d log p(v | j) / d alpha = -|j - v| + sum_k p_k |j - k|.
            double expected_distance = 0.0;
            for (int k = 0; k < l; ++k) {
              expected_distance += p[k] * std::abs(j - k);
            }
            grad_alpha[w] += weight *
                             (expected_distance - std::abs(j - vote.label)) *
                             worker_scale[w];
            // d log p(v | j) / d beta = 1{v=j} - p_j.
            grad_beta[w] += weight *
                            ((vote.label == j ? 1.0 : 0.0) - p[j]) *
                            worker_scale[w];
          }
        }
      }
      for (size_t i = 0; i < tau.size(); ++i) {
        tau[i] += learning_rate_ * grad_tau[i];
      }
      for (data::WorkerId w = 0; w < num_workers; ++w) {
        alpha[w] = std::clamp(alpha[w] + learning_rate_ * grad_alpha[w],
                              -4.0, 8.0);
        beta[w] = std::clamp(beta[w] + learning_rate_ * grad_beta[w], -4.0,
                             8.0);
      }
    }

    // Label update with a smoothed class-prior anchor (see Minimax).
    std::vector<double> log_prior(l);
    {
      std::vector<double> class_mass(l, 1.0);
      double total_mass = l;
      for (data::TaskId t = 0; t < n; ++t) {
        if (dataset.AnswersForTask(t).empty()) continue;
        for (int j = 0; j < l; ++j) class_mass[j] += labels[t][j];
        total_mass += 1.0;
      }
      for (int j = 0; j < l; ++j) {
        log_prior[j] = std::log(class_mass[j] / total_mass);
      }
    }
    Posterior next = labels;
    for (data::TaskId t = 0; t < n; ++t) {
      const auto& votes = dataset.AnswersForTask(t);
      if (votes.empty()) continue;
      log_belief = log_prior;
      for (const data::TaskVote& vote : votes) {
        for (int j = 0; j < l; ++j) {
          AnswerDistribution(&tau[static_cast<size_t>(t) * l],
                             alpha[vote.worker], beta[vote.worker], j, l, p);
          log_belief[j] += std::log(std::max(p[vote.label], 1e-12));
        }
      }
      util::SoftmaxInPlace(log_belief);
      next[t] = log_belief;
    }
    ClampGolden(dataset, options, next);

    const double change = MaxAbsDiff(labels, next);
    labels = std::move(next);
    result.convergence_trace.push_back(change);
    result.iterations = iteration + 1;
    if (change < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.labels = ArgmaxLabels(labels, rng);
  // Quality summary: probability of an exact answer on a middle class,
  // ignoring task effects.
  result.worker_quality.assign(num_workers, 0.0);
  std::vector<double> zero_tau(l, 0.0);
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    const int mid = l / 2;
    AnswerDistribution(zero_tau.data(), alpha[w], beta[w], mid, l, p);
    result.worker_quality[w] = p[mid];
  }
  result.posterior = std::move(labels);
  return result;
}

}  // namespace crowdtruth::core
