#include "core/common.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace crowdtruth::core {

bool HasGoldenLabels(const data::CategoricalDataset& dataset,
                     const InferenceOptions& options) {
  if (options.golden_labels.empty()) return false;
  CROWDTRUTH_CHECK_EQ(static_cast<int>(options.golden_labels.size()),
                      dataset.num_tasks());
  return true;
}

bool HasGoldenValues(const data::NumericDataset& dataset,
                     const InferenceOptions& options) {
  if (options.golden_values.empty()) return false;
  CROWDTRUTH_CHECK_EQ(static_cast<int>(options.golden_values.size()),
                      dataset.num_tasks());
  return true;
}

Posterior InitialPosterior(const data::CategoricalDataset& dataset,
                           const InferenceOptions& options) {
  const int n = dataset.num_tasks();
  const int l = dataset.num_choices();
  const bool golden = HasGoldenLabels(dataset, options);
  const bool weighted = !options.initial_worker_quality.empty();
  if (weighted) {
    CROWDTRUTH_CHECK_EQ(
        static_cast<int>(options.initial_worker_quality.size()),
        dataset.num_workers());
  }

  Posterior posterior(n, std::vector<double>(l, 1.0 / l));
  for (data::TaskId t = 0; t < n; ++t) {
    if (golden && options.golden_labels[t] != data::kNoTruth) {
      std::fill(posterior[t].begin(), posterior[t].end(), 0.0);
      posterior[t][options.golden_labels[t]] = 1.0;
      continue;
    }
    const auto& votes = dataset.AnswersForTask(t);
    if (votes.empty()) continue;
    std::vector<double> counts(l, 0.0);
    double total = 0.0;
    for (const data::TaskVote& vote : votes) {
      // Weight a vote by the worker's qualification-test quality when
      // available; a 0-quality worker still contributes a small amount so
      // that tasks answered only by such workers keep a defined belief.
      const double weight =
          weighted
              ? std::max(options.initial_worker_quality[vote.worker], 0.05)
              : 1.0;
      counts[vote.label] += weight;
      total += weight;
    }
    if (total > 0.0) {
      for (int z = 0; z < l; ++z) posterior[t][z] = counts[z] / total;
    }
  }
  return posterior;
}

void ClampGolden(const data::CategoricalDataset& dataset,
                 const InferenceOptions& options, Posterior& posterior) {
  if (!HasGoldenLabels(dataset, options)) return;
  for (data::TaskId t = 0; t < dataset.num_tasks(); ++t) {
    const data::LabelId g = options.golden_labels[t];
    if (g == data::kNoTruth) continue;
    std::fill(posterior[t].begin(), posterior[t].end(), 0.0);
    posterior[t][g] = 1.0;
  }
}

double MaxAbsDiff(const Posterior& a, const Posterior& b) {
  CROWDTRUTH_CHECK_EQ(a.size(), b.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    CROWDTRUTH_CHECK_EQ(a[i].size(), b[i].size());
    for (size_t z = 0; z < a[i].size(); ++z) {
      max_diff = std::max(max_diff, std::fabs(a[i][z] - b[i][z]));
    }
  }
  return max_diff;
}

std::vector<data::LabelId> ArgmaxLabels(const Posterior& posterior,
                                        util::Rng& rng) {
  std::vector<data::LabelId> labels(posterior.size(), 0);
  std::vector<int> ties;
  for (size_t i = 0; i < posterior.size(); ++i) {
    double best = -1.0;
    ties.clear();
    for (size_t z = 0; z < posterior[i].size(); ++z) {
      if (posterior[i][z] > best + 1e-12) {
        best = posterior[i][z];
        ties.assign(1, static_cast<int>(z));
      } else if (std::fabs(posterior[i][z] - best) <= 1e-12) {
        ties.push_back(static_cast<int>(z));
      }
    }
    labels[i] = ties.size() == 1
                    ? ties[0]
                    : ties[rng.UniformInt(0, static_cast<int>(ties.size()) -
                                                 1)];
  }
  return labels;
}

std::vector<data::LabelId> MajorityVoteLabels(
    const data::CategoricalDataset& dataset, const InferenceOptions& options,
    util::Rng& rng) {
  const int l = dataset.num_choices();
  const bool golden = HasGoldenLabels(dataset, options);
  std::vector<data::LabelId> labels(dataset.num_tasks(), 0);
  std::vector<double> counts(l);
  std::vector<int> ties;
  for (data::TaskId t = 0; t < dataset.num_tasks(); ++t) {
    if (golden && options.golden_labels[t] != data::kNoTruth) {
      labels[t] = options.golden_labels[t];
      continue;
    }
    std::fill(counts.begin(), counts.end(), 0.0);
    for (const data::TaskVote& vote : dataset.AnswersForTask(t)) {
      counts[vote.label] += 1.0;
    }
    double best = -1.0;
    ties.clear();
    for (int z = 0; z < l; ++z) {
      if (counts[z] > best) {
        best = counts[z];
        ties.assign(1, z);
      } else if (counts[z] == best) {
        ties.push_back(z);
      }
    }
    labels[t] = ties.size() == 1
                    ? ties[0]
                    : ties[rng.UniformInt(0, static_cast<int>(ties.size()) -
                                                 1)];
  }
  return labels;
}

std::vector<double> MeanValues(const data::NumericDataset& dataset,
                               const InferenceOptions& options) {
  std::vector<double> values(dataset.num_tasks(), 0.0);
  for (data::TaskId t = 0; t < dataset.num_tasks(); ++t) {
    const auto& votes = dataset.AnswersForTask(t);
    if (votes.empty()) continue;
    double total = 0.0;
    for (const data::NumericTaskVote& vote : votes) total += vote.value;
    values[t] = total / votes.size();
  }
  ClampGoldenValues(dataset, options, values);
  return values;
}

void ClampGoldenValues(const data::NumericDataset& dataset,
                       const InferenceOptions& options,
                       std::vector<double>& values) {
  if (!HasGoldenValues(dataset, options)) return;
  for (data::TaskId t = 0; t < dataset.num_tasks(); ++t) {
    if (!std::isnan(options.golden_values[t])) {
      values[t] = options.golden_values[t];
    }
  }
}

}  // namespace crowdtruth::core
