// Inference tracing: per-iteration observability for Algorithm 1.
//
// Every iterative method alternates two phases — inferring the truth from
// the current worker qualities ("truth step", step 1 of Algorithm 1) and
// re-estimating worker qualities from the current truth ("quality step",
// step 2). A TraceSink installed in InferenceOptions::trace receives one
// IterationEvent per outer iteration with the convergence delta and the
// wall-clock spent in each phase, letting callers watch convergence live,
// persist run trajectories, and attribute time to the phase that consumed
// it.
//
// Sinks are not synchronized by default: share a sink across concurrent
// Infer calls only if the sink itself is thread-safe. The bundled
// CollectingTraceSink / StreamTraceSink are not (the experiment runner
// creates one per run); wrap any sink in SynchronizedTraceSink to share it
// across threads.
#ifndef CROWDTRUTH_CORE_TRACE_H_
#define CROWDTRUTH_CORE_TRACE_H_

#include <iosfwd>
#include <mutex>
#include <vector>

#include "util/stopwatch.h"

namespace crowdtruth::core {

// The two phases of the unified framework's iteration. Methods whose
// quality model is fit by gradient ascent or Gibbs sampling count that
// parameter fit as the quality step.
enum class TracePhase { kTruthStep, kQualityStep };

struct IterationEvent {
  // 1-based outer-iteration index (matches CategoricalResult::iterations).
  int iteration = 0;
  // Parameter change this iteration — the same value the method appends to
  // convergence_trace and compares against options.tolerance.
  double delta = 0.0;
  // Wall-clock seconds spent in each phase this iteration.
  double truth_seconds = 0.0;
  double quality_seconds = 0.0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnIteration(const IterationEvent& event) = 0;
};

// Buffers events in memory; used by the experiment runner to assemble
// RunReports and by tests. Optionally forwards each event to `forward`
// so a caller-installed sink keeps observing a run the runner instruments.
class CollectingTraceSink : public TraceSink {
 public:
  explicit CollectingTraceSink(TraceSink* forward = nullptr)
      : forward_(forward) {}

  void OnIteration(const IterationEvent& event) override {
    events_.push_back(event);
    if (forward_ != nullptr) forward_->OnIteration(event);
  }

  const std::vector<IterationEvent>& events() const { return events_; }
  std::vector<IterationEvent> TakeEvents() { return std::move(events_); }

 private:
  std::vector<IterationEvent> events_;
  TraceSink* forward_;
};

// Serializes OnIteration calls onto a wrapped sink, making any sink safe
// to share across concurrent Infer calls (e.g. one CollectingTraceSink
// observing several methods running in parallel threads). Events from
// different runs interleave in lock-acquisition order; events from one run
// keep their order.
class SynchronizedTraceSink : public TraceSink {
 public:
  explicit SynchronizedTraceSink(TraceSink* wrapped) : wrapped_(wrapped) {}

  void OnIteration(const IterationEvent& event) override {
    if (wrapped_ == nullptr) return;
    std::lock_guard<std::mutex> lock(mutex_);
    wrapped_->OnIteration(event);
  }

 private:
  TraceSink* wrapped_;
  std::mutex mutex_;
};

// Prints one human-readable line per iteration; used by
// `crowdtruth_infer --trace`.
class StreamTraceSink : public TraceSink {
 public:
  explicit StreamTraceSink(std::ostream& out) : out_(out) {}
  void OnIteration(const IterationEvent& event) override;

 private:
  std::ostream& out_;
};

// The helper the methods thread through their loops. All calls are no-ops
// when `sink` is null, so untraced runs pay a single branch per call.
//
//   IterationTracer tracer(options.trace);
//   for (int iteration = 0; ...; ++iteration) {
//     tracer.BeginIteration();
//     /* quality step */      tracer.EndPhase(TracePhase::kQualityStep);
//     /* truth step */        tracer.EndPhase(TracePhase::kTruthStep);
//     tracer.EndIteration(iteration + 1, change);
//   }
//
// EndPhase accumulates the wall-clock since the previous mark (BeginIteration
// or the previous EndPhase) into the named phase, so phases may run in any
// order and more than once per iteration.
class IterationTracer {
 public:
  explicit IterationTracer(TraceSink* sink) : sink_(sink) {}

  // True when a sink is installed; lets methods skip computing a delta that
  // exists only for tracing (e.g. the Gibbs samplers' label-flip fraction).
  bool active() const { return sink_ != nullptr; }

  void BeginIteration() {
    if (sink_ == nullptr) return;
    truth_seconds_ = 0.0;
    quality_seconds_ = 0.0;
    stopwatch_.Restart();
  }

  void EndPhase(TracePhase phase) {
    if (sink_ == nullptr) return;
    const double elapsed = stopwatch_.ElapsedSeconds();
    (phase == TracePhase::kTruthStep ? truth_seconds_ : quality_seconds_) +=
        elapsed;
    stopwatch_.Restart();
  }

  void EndIteration(int iteration, double delta) {
    if (sink_ == nullptr) return;
    IterationEvent event;
    event.iteration = iteration;
    event.delta = delta;
    event.truth_seconds = truth_seconds_;
    event.quality_seconds = quality_seconds_;
    sink_->OnIteration(event);
  }

 private:
  TraceSink* sink_;
  util::Stopwatch stopwatch_;
  double truth_seconds_ = 0.0;
  double quality_seconds_ = 0.0;
};

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_TRACE_H_
