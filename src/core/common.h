// Shared building blocks for the iterative methods: posterior
// initialization, golden-task clamping, convergence measurement, and label
// extraction. Kept internal to the core library.
#ifndef CROWDTRUTH_CORE_COMMON_H_
#define CROWDTRUTH_CORE_COMMON_H_

#include <vector>

#include "core/inference.h"
#include "data/dataset.h"
#include "util/rng.h"

namespace crowdtruth::core {

// posterior[i][z] = current belief that task i's truth is choice z.
using Posterior = std::vector<std::vector<double>>;

// Returns true when golden labels are supplied for this dataset.
bool HasGoldenLabels(const data::CategoricalDataset& dataset,
                     const InferenceOptions& options);
bool HasGoldenValues(const data::NumericDataset& dataset,
                     const InferenceOptions& options);

// Initial belief from (optionally quality-weighted) vote shares. Golden
// tasks are one-hot; tasks without answers are uniform. When
// options.initial_worker_quality is present, votes are weighted by it
// (the qualification-test initialization of Algorithm 1, line 1).
Posterior InitialPosterior(const data::CategoricalDataset& dataset,
                           const InferenceOptions& options);

// Overwrites the belief of golden tasks with a one-hot distribution.
void ClampGolden(const data::CategoricalDataset& dataset,
                 const InferenceOptions& options, Posterior& posterior);

// Max absolute difference between two posteriors; the convergence measure
// for the EM/VI methods.
double MaxAbsDiff(const Posterior& a, const Posterior& b);

// Argmax labels with seeded random tie-breaking. `rng` supplies the
// tie-break stream.
std::vector<data::LabelId> ArgmaxLabels(const Posterior& posterior,
                                        util::Rng& rng);

// Hard majority vote with seeded random tie-breaking; tasks without
// answers get a random label. Honors golden labels when supplied.
std::vector<data::LabelId> MajorityVoteLabels(
    const data::CategoricalDataset& dataset, const InferenceOptions& options,
    util::Rng& rng);

// For numeric methods: per-task unweighted mean of the answers (0 when a
// task has no answers). Honors golden values when supplied.
std::vector<double> MeanValues(const data::NumericDataset& dataset,
                               const InferenceOptions& options);

// Clamps golden numeric tasks to their supplied values.
void ClampGoldenValues(const data::NumericDataset& dataset,
                       const InferenceOptions& options,
                       std::vector<double>& values);

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_COMMON_H_
