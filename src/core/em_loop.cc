#include "core/em_loop.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace crowdtruth::core {
namespace {

// Commits one finished loop to the process-wide registry. Family lookups
// run once per Infer call (not per iteration), so the mutex-guarded name
// resolution is off the hot path.
void RecordEmRunMetrics(obs::MetricRegistry* metrics, const EmDriver& driver,
                        const EmLoopStats& stats, double truth_seconds,
                        double quality_seconds) {
  const std::vector<std::string> label = {driver.method};
  metrics
      ->AddCounterFamily("crowdtruth_em_runs_total",
                         "Completed Algorithm-1 outer loops per method.",
                         {"method"})
      .WithLabels(label)
      .Increment();
  if (stats.converged) {
    metrics
        ->AddCounterFamily(
            "crowdtruth_em_converged_runs_total",
            "Loops that met their convergence rule before max_iterations.",
            {"method"})
        .WithLabels(label)
        .Increment();
  }
  metrics
      ->AddCounterFamily("crowdtruth_em_iterations_total",
                         "Outer iterations executed per method.", {"method"})
      .WithLabels(label)
      .Increment(stats.iterations);
  metrics
      ->AddCounterFamily(
          "crowdtruth_em_truth_step_seconds_total",
          "Wall-clock spent in truth-step kernels per method.", {"method"})
      .WithLabels(label)
      .Increment(truth_seconds);
  metrics
      ->AddCounterFamily(
          "crowdtruth_em_quality_step_seconds_total",
          "Wall-clock spent in quality-step kernels per method.", {"method"})
      .WithLabels(label)
      .Increment(quality_seconds);
  if (!stats.convergence_trace.empty()) {
    obs::Histogram& deltas =
        metrics
            ->AddHistogramFamily(
                "crowdtruth_em_convergence_delta",
                "Per-iteration parameter change (convergence_trace values).",
                {"method"},
                obs::HistogramBuckets::LogScale(1e-10, 10.0, 12))
            .WithLabels(label);
    for (const double delta : stats.convergence_trace) {
      deltas.Observe(delta);
    }
  }
}

}  // namespace

void EmContext::ParallelShards(int count,
                               const std::function<void(int, int)>& fn) const {
  util::ParallelForSlotted(count, num_threads_, fn);
}

EmDriver EmDriver::FromOptions(const InferenceOptions& options,
                               const char* method) {
  EmDriver driver;
  driver.method = method;
  driver.max_iterations = options.max_iterations;
  driver.tolerance = options.tolerance;
  // An explicit request is still capped at the hardware width: extra pool
  // workers on a saturated machine cannot speed up a CPU-bound shard loop,
  // they only add scheduler thrash per region. Results are unaffected by
  // construction — kernels are bit-identical at any thread count.
  driver.num_threads = options.num_threads <= 0
                           ? util::DefaultThreads()
                           : std::min(options.num_threads,
                                      util::DefaultThreads());
  driver.trace = options.trace;
  return driver;
}

EmLoopStats RunEmLoop(const EmDriver& driver, const std::vector<EmStep>& steps,
                      const std::function<double(bool)>& measure) {
  EmLoopStats stats;
  obs::Span run_span("em_run");
  if (run_span.armed()) run_span.Annotate("method", driver.method);
  IterationTracer tracer(driver.trace);
  EmContext context(driver.num_threads);
  // Metrics phase timing is independent of the tracer: activating the
  // tracer changes what methods compute for their delta (see
  // IterationTracer::active), and metrics must never perturb a run.
  obs::MetricRegistry* const metrics = obs::ProcessMetrics();
  util::Stopwatch phase_watch;
  double truth_seconds = 0.0;
  double quality_seconds = 0.0;
  for (int iteration = 0; iteration < driver.max_iterations; ++iteration) {
    context.iteration_ = iteration;
    tracer.BeginIteration();
    for (const EmStep& step : steps) {
      obs::Span step_span(step.phase == TracePhase::kTruthStep
                              ? "em_truth_step"
                              : "em_quality_step");
      if (step_span.armed()) {
        step_span.Annotate("iteration", static_cast<int64_t>(iteration));
      }
      if (metrics != nullptr) phase_watch.Restart();
      step.run(context);
      tracer.EndPhase(step.phase);
      if (metrics != nullptr) {
        (step.phase == TracePhase::kTruthStep ? truth_seconds
                                              : quality_seconds) +=
            phase_watch.ElapsedSeconds();
      }
    }
    const bool delta_needed =
        driver.convergence != EmConvergence::kFixedIterations ||
        tracer.active();
    const double delta = measure(delta_needed);
    stats.iterations = iteration + 1;
    if (driver.record_trace) stats.convergence_trace.push_back(delta);
    tracer.EndIteration(stats.iterations, delta);
    bool converged = false;
    switch (driver.convergence) {
      case EmConvergence::kDeltaBelowTolerance:
        converged = delta < driver.tolerance;
        break;
      case EmConvergence::kDeltaIsZero:
        converged = delta == 0.0;
        break;
      case EmConvergence::kFixedIterations:
        break;
    }
    if (converged && stats.iterations >= driver.min_iterations) {
      stats.converged = true;
      break;
    }
  }
  if (metrics != nullptr) {
    RecordEmRunMetrics(metrics, driver, stats, truth_seconds,
                       quality_seconds);
  }
  if (run_span.armed()) {
    run_span.Annotate("iterations", static_cast<int64_t>(stats.iterations));
    run_span.Annotate("converged", std::string(stats.converged ? "1" : "0"));
  }
  return stats;
}

}  // namespace crowdtruth::core
