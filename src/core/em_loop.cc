#include "core/em_loop.h"

#include "util/parallel.h"

namespace crowdtruth::core {

void EmContext::ParallelShards(int count,
                               const std::function<void(int, int)>& fn) const {
  util::ParallelForSlotted(count, num_threads_, fn);
}

EmDriver EmDriver::FromOptions(const InferenceOptions& options) {
  EmDriver driver;
  driver.max_iterations = options.max_iterations;
  driver.tolerance = options.tolerance;
  driver.num_threads = options.num_threads <= 0 ? util::DefaultThreads()
                                                : options.num_threads;
  driver.trace = options.trace;
  return driver;
}

EmLoopStats RunEmLoop(const EmDriver& driver, const std::vector<EmStep>& steps,
                      const std::function<double(bool)>& measure) {
  EmLoopStats stats;
  IterationTracer tracer(driver.trace);
  EmContext context(driver.num_threads);
  for (int iteration = 0; iteration < driver.max_iterations; ++iteration) {
    context.iteration_ = iteration;
    tracer.BeginIteration();
    for (const EmStep& step : steps) {
      step.run(context);
      tracer.EndPhase(step.phase);
    }
    const bool delta_needed =
        driver.convergence != EmConvergence::kFixedIterations ||
        tracer.active();
    const double delta = measure(delta_needed);
    stats.iterations = iteration + 1;
    if (driver.record_trace) stats.convergence_trace.push_back(delta);
    tracer.EndIteration(stats.iterations, delta);
    bool converged = false;
    switch (driver.convergence) {
      case EmConvergence::kDeltaBelowTolerance:
        converged = delta < driver.tolerance;
        break;
      case EmConvergence::kDeltaIsZero:
        converged = delta == 0.0;
        break;
      case EmConvergence::kFixedIterations:
        break;
    }
    if (converged && stats.iterations >= driver.min_iterations) {
      stats.converged = true;
      break;
    }
  }
  return stats;
}

}  // namespace crowdtruth::core
