// The shared driver for Algorithm 1's outer loop (paper §3).
//
// Every iterative method alternates the same two phases — re-estimate
// worker quality from the current truth ("quality step") and re-infer the
// truth from the current qualities ("truth step") — wrapped in identical
// bookkeeping: phase timing via IterationTracer, convergence measurement,
// the convergence_trace / iterations / converged triple, and an early exit
// when the parameter change falls below tolerance. RunEmLoop owns that
// skeleton once; methods supply only their kernels.
//
// A kernel is an EmStep: a phase tag (for tracing) plus a callback that
// performs the phase's work. The callback receives an EmContext whose
// ParallelShards() runs a deterministic sharded loop on the process-wide
// worker pool: truth steps shard over tasks, quality steps over workers,
// and gradient kernels alternate both. Determinism is structural, not
// statistical — each shard serially reduces over its own adjacency row
// (the dataset's CSR layout: task-major task_offsets/task_workers/
// task_labels for truth steps, the worker-major transpose for quality
// steps; see data/dataset.h) and writes only state it owns, so the
// floating-point evaluation order per task/worker is independent of the
// thread count and the results are bit-identical for any
// InferenceOptions::num_threads. Kernels that need shared sequential state
// (the Gibbs samplers' RNG, tie-breaking draws) simply run that part
// serially inside the callback; RNG consumption order is then also
// thread-count invariant.
#ifndef CROWDTRUTH_CORE_EM_LOOP_H_
#define CROWDTRUTH_CORE_EM_LOOP_H_

#include <functional>
#include <vector>

#include "core/inference.h"
#include "core/trace.h"

namespace crowdtruth::core {

// Handed to every kernel invocation; owns nothing.
class EmContext {
 public:
  explicit EmContext(int num_threads)
      : num_threads_(num_threads < 1 ? 1 : num_threads) {}

  // Worker-pool width. Kernels size per-slot scratch with this.
  int num_threads() const { return num_threads_; }

  // 0-based index of the current outer iteration (the Gibbs samplers use it
  // to gate burn-in).
  int iteration() const { return iteration_; }

  // Runs fn(shard, slot) for shard in [0, count); slot < num_threads()
  // identifies the executing worker for scratch reuse. fn must write only
  // state owned by its shard (plus slot scratch) — under that contract the
  // result is bit-identical at any thread count.
  void ParallelShards(int count,
                      const std::function<void(int, int)>& fn) const;

 private:
  friend struct EmLoopStats RunEmLoop(
      const struct EmDriver&, const std::vector<struct EmStep>&,
      const std::function<double(bool)>&);
  int num_threads_;
  int iteration_ = 0;
};

// How the driver decides the loop has converged after an iteration.
enum class EmConvergence {
  // delta < tolerance — the EM / variational / IRLS methods.
  kDeltaBelowTolerance,
  // delta == 0 exactly — methods whose truth state is discrete labels
  // (PM, CATD categorical, Multi) converge when no label changed.
  kDeltaIsZero,
  // Run max_iterations unconditionally — fixed-round message passing (KOS)
  // and the Gibbs samplers (BCC, CBCC).
  kFixedIterations,
};

struct EmStep {
  TracePhase phase = TracePhase::kTruthStep;
  std::function<void(const EmContext&)> run;
};

// Driver configuration. FromOptions copies the Algorithm-1 controls from
// InferenceOptions and resolves num_threads (<= 0 -> util::DefaultThreads);
// methods then override the fields their semantics require.
struct EmDriver {
  int max_iterations = 100;
  double tolerance = 1e-4;
  int num_threads = 1;
  TraceSink* trace = nullptr;
  // Registry-facing method name: the `method` label on the process-wide
  // EM metrics (obs/metrics.h). Purely observational — never branches the
  // math. String literals only; the driver does not copy it.
  const char* method = "unknown";
  EmConvergence convergence = EmConvergence::kDeltaBelowTolerance;
  // Completed iterations required before convergence may fire. The
  // PM-family methods demand two, so the quality step runs at least once
  // on a truth estimate it produced.
  int min_iterations = 1;
  // Append each iteration's delta to convergence_trace. The fixed-round
  // methods historically keep the trace empty.
  bool record_trace = true;

  static EmDriver FromOptions(const InferenceOptions& options,
                              const char* method = "unknown");
};

// The bookkeeping RunEmLoop accumulates; mirrors the trailing fields of
// CategoricalResult / NumericResult.
struct EmLoopStats {
  std::vector<double> convergence_trace;
  int iterations = 0;
  bool converged = false;
};

// Runs the outer loop: each iteration executes `steps` in order (ending the
// trace phase each step names), then calls measure() serially to commit the
// iteration's state and return its convergence delta. measure's argument is
// false only when the delta is provably unused (kFixedIterations with no
// trace sink), letting fixed-round methods skip the bookkeeping.
EmLoopStats RunEmLoop(const EmDriver& driver, const std::vector<EmStep>& steps,
                      const std::function<double(bool delta_needed)>& measure);

inline void AdoptStats(EmLoopStats&& stats, CategoricalResult* result) {
  result->convergence_trace = std::move(stats.convergence_trace);
  result->iterations = stats.iterations;
  result->converged = stats.converged;
}

inline void AdoptStats(EmLoopStats&& stats, NumericResult* result) {
  result->convergence_trace = std::move(stats.convergence_trace);
  result->iterations = stats.iterations;
  result->converged = stats.converged;
}

}  // namespace crowdtruth::core

#endif  // CROWDTRUTH_CORE_EM_LOOP_H_
