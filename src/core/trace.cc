#include "core/trace.h"

#include <cstdio>
#include <ostream>

namespace crowdtruth::core {

void StreamTraceSink::OnIteration(const IterationEvent& event) {
  char line[128];
  std::snprintf(line, sizeof(line),
                "iter %-4d delta %.3e  truth %8.3fms  quality %8.3fms",
                event.iteration, event.delta, event.truth_seconds * 1e3,
                event.quality_seconds * 1e3);
  out_ << line << '\n';
}

}  // namespace crowdtruth::core
