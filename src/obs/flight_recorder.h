// The flight recorder: an always-on, bounded-memory store of recently
// finished spans (obs/span.h), one ring buffer per recording thread.
//
// The design target is "black box", not "log": recording must be cheap
// enough to leave armed in production, and memory must stay bounded no
// matter how long the process runs — so each thread writes into a
// fixed-capacity ring that overwrites its oldest span, and Dump() stitches
// the rings into one start-time-ordered view of the recent past (on
// demand, at exit, or from the server's /debug/trace endpoint).
//
// Concurrency: a thread records only into its own ring, guarded by a
// per-ring mutex that is uncontended except while a dump is in progress —
// the hot path is one lock of a never-shared mutex plus a slot write, and
// the whole structure is TSan-clean without atomics trickery.
//
// Like the metric registry, the recorder is installed process-wide
// (InstallFlightRecorder); when none is installed — the default — every
// span site reduces to one relaxed atomic pointer load and a branch, and
// recording never steers: results are bit-identical with the recorder
// armed (pinned by method_threading_test).
#ifndef CROWDTRUTH_OBS_FLIGHT_RECORDER_H_
#define CROWDTRUTH_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace crowdtruth::obs {

// One finished span. Times are seconds on the process-wide monotonic
// clock (util::Stopwatch's steady_clock, zeroed at first span use), so
// spans from different threads share one timeline.
struct SpanRecord {
  uint64_t trace_id = 0;   // shared by every span of one causal tree
  uint64_t span_id = 0;    // unique per span, process-wide
  uint64_t parent_id = 0;  // 0 = root
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  uint32_t thread_index = 0;  // recorder-assigned dense thread number
  std::vector<std::pair<std::string, std::string>> annotations;
};

struct FlightRecorderConfig {
  // Spans retained per recording thread; older spans are overwritten.
  // 8192 spans x ~200 bytes is ~1.6 MB per thread, a few minutes of
  // serving-plane history at typical ingest rates.
  size_t capacity_per_thread = 8192;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  // Appends one finished span to the calling thread's ring, overwriting
  // the oldest span when full.
  void Record(SpanRecord&& record);

  // Every retained span across all rings, sorted by (start, span_id).
  std::vector<SpanRecord> Dump() const;

  // Lifetime spans recorded / overwritten before they were dumped.
  int64_t recorded() const;
  int64_t dropped() const;

  const FlightRecorderConfig& config() const { return config_; }

 private:
  struct Ring {
    explicit Ring(size_t capacity) : slots(capacity) {}
    mutable std::mutex mutex;
    std::vector<SpanRecord> slots;
    size_t next = 0;      // ring write position
    int64_t written = 0;  // lifetime records into this ring
  };

  Ring* RingForThisThread();

  FlightRecorderConfig config_;
  // Process-unique instance id: threads key their cached ring on this, not
  // the recorder's address, so a new recorder allocated where a destroyed
  // one lived can never serve a stale ring pointer.
  uint64_t instance_id_ = 0;
  mutable std::mutex rings_mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

// The recorder span sites report to; nullptr (the default) disables
// recording everywhere. Not owned; must outlive its installation. Swap
// only between runs, not while instrumented code is executing.
FlightRecorder* ProcessFlightRecorder();
void InstallFlightRecorder(FlightRecorder* recorder);

}  // namespace crowdtruth::obs

#endif  // CROWDTRUTH_OBS_FLIGHT_RECORDER_H_
