// Process-wide metrics: the always-on counterpart of core/trace.h.
//
// A TraceSink observes one Infer call from the inside; a MetricRegistry
// observes the whole process from the outside — how many EM runs completed,
// how many answers the streaming engine ingested, how much the validators
// repaired, what the worker pool executed — and exposes the totals in
// Prometheus text format (for a scraper hitting obs::MetricsHttpServer) or
// as JSON (via util/json_writer, for run reports and file dumps).
//
// Four instrument kinds, thread-safe throughout (the first three with
// lock-free atomics on the hot path):
//
//   * Counter   — monotonically increasing double (events, seconds).
//   * Gauge     — arbitrary settable double (backlog depth, peak RSS).
//   * Histogram — fixed-bucket cumulative histogram; the log-scale bucket
//                 layout bounds memory to O(buckets) regardless of sample
//                 count — the bounded alternative to util::LatencyRecorder,
//                 which keeps every raw sample alive (8 bytes per answer,
//                 forever, on a long-lived stream).
//   * Digest    — a mutex-guarded obs::TDigest quantile sketch, exposed in
//                 Prometheus summary form (quantile-labeled samples plus
//                 _sum/_count). Buckets answer "how many samples fell
//                 here"; digests answer "what is p99" with memory bounded
//                 by the compression, not the bucket layout — the tail
//                 signal the adaptive controller retunes on.
//
// Metrics come in families: a family has a name, a help string and a list
// of label names; each distinct label-value vector materializes one child
// instrument. Child lookup (WithLabels) takes the family mutex — callers on
// hot paths look the child up once and cache the pointer; Increment /
// Set / Observe on the child are pure atomics.
//
// Instrumented layers (em_loop, streaming/engine, data/validate) observe
// the process-wide registry installed via InstallProcessMetrics. When none
// is installed (the default) every instrumentation site reduces to one
// relaxed atomic pointer load and a branch, and results are unaffected
// either way: metrics record, they never steer.
//
// Registration is idempotent: re-adding a family with the same name
// returns the existing one (kind and label names must match), so
// independent components can declare the metrics they need without
// coordinating ownership.
#ifndef CROWDTRUTH_OBS_METRICS_H_
#define CROWDTRUTH_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/tdigest.h"
#include "util/json_writer.h"

namespace crowdtruth::obs {

namespace internal {

// C++20 has std::atomic<double>::fetch_add, but a CAS loop keeps the
// memory-order story explicit and works on every toolchain we build with.
inline void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

// Raises `target` to at least `value` (for counters refreshed from an
// external monotone source, e.g. cumulative CPU from getrusage).
inline void AtomicMax(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (current < value &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace internal

class Counter {
 public:
  void Increment(double delta = 1.0) { internal::AtomicAdd(value_, delta); }
  // Sets the counter to at least `value`; used by collection hooks that
  // mirror an external cumulative total.
  void AdvanceTo(double value) { internal::AtomicMax(value_, value); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { internal::AtomicAdd(value_, delta); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Bucket layout shared by every child of a histogram family: strictly
// increasing finite upper bounds; the +Inf bucket is implicit.
struct HistogramBuckets {
  std::vector<double> bounds;

  // `count` buckets at first, first*factor, first*factor^2, ... — the
  // log-scale layout that covers microseconds to minutes in ~a dozen
  // buckets.
  static HistogramBuckets LogScale(double first, double factor, int count);
  // Default layout for second-denominated latencies: 1us .. ~68s, x4 steps.
  static HistogramBuckets LatencySeconds() {
    return LogScale(1e-6, 4.0, 14);
  }
  // Default layout for small nonnegative integer sizes (sweep depths,
  // backlog lengths): 1, 2, 4, ... 4096.
  static HistogramBuckets PowersOfTwo(int count = 13) {
    return LogScale(1.0, 2.0, count);
  }
};

class Histogram {
 public:
  explicit Histogram(const HistogramBuckets& buckets);

  // Lock-free: one relaxed increment on the bucket, the total count and
  // the sum. Non-finite values count toward the +Inf bucket with no sum
  // contribution, so one NaN cannot poison the series.
  void Observe(double value);

  struct Snapshot {
    // Cumulative count per finite bound, then the +Inf total.
    std::vector<int64_t> cumulative;
    int64_t count = 0;
    double sum = 0.0;
  };
  const std::vector<double>& bounds() const { return bounds_; }
  Snapshot Snap() const;

 private:
  std::vector<double> bounds_;
  // bounds_.size() + 1 slots; the last is the overflow (+Inf) bucket.
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Sketch layout shared by every child of a digest family.
struct DigestOptions {
  double compression = 100.0;
  // Quantiles exposed by the summary exposition (and mirrored as the
  // controller's quantile gauges); must be increasing in [0, 1].
  std::vector<double> quantiles = {0.5, 0.9, 0.99};
};

// A TDigest child instrument. Observe takes a never-shared-in-practice
// mutex (per child, uncontended except against a scrape); still cheap, but
// digests belong on per-request paths, not inside per-iteration kernels.
class Digest {
 public:
  explicit Digest(const DigestOptions& options)
      : options_(options), digest_(options.compression) {}

  void Observe(double value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    digest_.Add(value);
  }

  // Folds an externally built sketch in (shard barriers merging per-shard
  // digests into the coordinator's series).
  void MergeFrom(const TDigest& other) {
    const std::lock_guard<std::mutex> lock(mutex_);
    digest_.Merge(other);
  }

  TDigest Snap() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return digest_;
  }

  const DigestOptions& options() const { return options_; }

 private:
  DigestOptions options_;
  mutable std::mutex mutex_;
  TDigest digest_;
};

// One exposed series: the child instrument plus its label values (in the
// family's label-name order).
template <typename T>
struct LabeledChild {
  std::vector<std::string> labels;
  std::unique_ptr<T> child;
};

class MetricRegistry;

// Base the registry iterates for exposition; concrete families add the
// typed WithLabels accessor.
class FamilyBase {
 public:
  virtual ~FamilyBase() = default;
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  const std::vector<std::string>& label_names() const { return label_names_; }
  virtual const char* kind() const = 0;

 protected:
  friend class MetricRegistry;
  std::string name_;
  std::string help_;
  std::vector<std::string> label_names_;
  // The owning registry, for label-value interning in WithLabels. Never
  // null for families created through MetricRegistry::Add*Family.
  MetricRegistry* registry_ = nullptr;
};

template <typename T>
class Family : public FamilyBase {
 public:
  // Returns the child for `values` (sized like label_names), creating it on
  // first use. Takes the family mutex — cache the reference on hot paths.
  // Label values pass through the owning registry's interner first, so a
  // label name with a cardinality cap collapses overflow values into the
  // cap's overflow child (defined after MetricRegistry below).
  T& WithLabels(const std::vector<std::string>& values);

  const char* kind() const override;

  // Insertion-order snapshot of (labels, child) pairs for exposition. The
  // child pointers stay valid for the family's lifetime.
  std::vector<std::pair<std::vector<std::string>, const T*>> Children() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::vector<std::string>, const T*>> out;
    out.reserve(children_.size());
    for (const auto& entry : children_) {
      out.emplace_back(entry.labels, entry.child.get());
    }
    return out;
  }

 private:
  friend class MetricRegistry;
  std::unique_ptr<T> MakeChild() const;

  mutable std::mutex mutex_;
  std::vector<LabeledChild<T>> children_;
  HistogramBuckets buckets_;      // used only when T == Histogram
  DigestOptions digest_options_;  // used only when T == Digest
};

// The process-wide metric container. Thread-safe throughout; families and
// children live as long as the registry, so cached child pointers never
// dangle.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Unlabeled instruments: a single-series family whose only child has an
  // empty label vector.
  Counter& AddCounter(const std::string& name, const std::string& help);
  Gauge& AddGauge(const std::string& name, const std::string& help);
  Histogram& AddHistogram(const std::string& name, const std::string& help,
                          const HistogramBuckets& buckets);
  Digest& AddDigest(const std::string& name, const std::string& help,
                    const DigestOptions& options);

  Family<Counter>& AddCounterFamily(const std::string& name,
                                    const std::string& help,
                                    const std::vector<std::string>& labels);
  Family<Gauge>& AddGaugeFamily(const std::string& name,
                                const std::string& help,
                                const std::vector<std::string>& labels);
  Family<Histogram>& AddHistogramFamily(
      const std::string& name, const std::string& help,
      const std::vector<std::string>& labels,
      const HistogramBuckets& buckets);
  Family<Digest>& AddDigestFamily(const std::string& name,
                                  const std::string& help,
                                  const std::vector<std::string>& labels,
                                  const DigestOptions& options);

  // Lookup by family name for consumers that read metrics back out of the
  // registry (the server's adaptive controller). Returns nullptr when the
  // name is unregistered or registered as a different kind.
  Family<Counter>* FindCounterFamily(const std::string& name);
  Family<Gauge>* FindGaugeFamily(const std::string& name);
  Family<Histogram>* FindHistogramFamily(const std::string& name);
  Family<Digest>* FindDigestFamily(const std::string& name);

  // --- Label interning with a cardinality cap ---
  //
  // Per-tenant series turn an unbounded id space (tenant names arrive from
  // the network) into an unbounded number of children unless the registry
  // bounds them. SetLabelCardinalityCap declares that the label `name` may
  // take at most `cap` distinct values; every WithLabels call routes its
  // values through InternLabelValue, so once the cap is reached further
  // distinct values collapse into the shared `overflow_value` child
  // ("other") instead of materializing new series. Values seen before the
  // cap was hit keep their own series forever. cap <= 0 removes the cap.
  void SetLabelCardinalityCap(const std::string& name, int cap,
                              const std::string& overflow_value = "other");

  // The canonical value for one label: `value` itself while the label is
  // uncapped or under its cap, the cap's overflow value afterwards. The
  // overflow value itself always passes through.
  std::string InternLabelValue(const std::string& name,
                               const std::string& value);

  // Distinct values currently interned for a capped label (0 if uncapped).
  int LabelCardinality(const std::string& name);

  // Hooks run (in registration order) at the start of every exposition —
  // the pull-model refresh point for gauges mirroring external state
  // (resource usage, pool stats).
  void AddCollectionHook(std::function<void()> hook);

  // Prometheus text exposition format 0.0.4: one HELP and TYPE line per
  // family, one series line per child (histograms expand into _bucket /
  // _sum / _count; digests expose the summary form — one quantile-labeled
  // sample per configured quantile plus _sum / _count). Runs the
  // collection hooks first.
  void WritePrometheus(std::ostream& out);
  std::string PrometheusText();

  // {"format": "crowdtruth_metrics", "version": 1, "metrics": [...]}.
  // Runs the collection hooks first.
  util::JsonValue ToJson();

 private:
  template <typename T>
  Family<T>& AddFamily(const std::string& name, const std::string& help,
                       const std::vector<std::string>& labels,
                       const HistogramBuckets* buckets,
                       const DigestOptions* digest_options = nullptr);
  template <typename T>
  Family<T>* FindFamily(const std::string& name);

  struct LabelCap {
    int cap = 0;
    std::string overflow_value;
    std::set<std::string> values;  // distinct values admitted so far
  };

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<FamilyBase>> families_;  // registration order
  std::vector<std::function<void()>> hooks_;
  std::map<std::string, LabelCap> label_caps_;  // keyed by label name
};

template <typename T>
T& Family<T>::WithLabels(const std::vector<std::string>& values) {
  std::vector<std::string> canonical = values;
  if (registry_ != nullptr) {
    for (size_t i = 0; i < label_names_.size() && i < canonical.size(); ++i) {
      canonical[i] =
          registry_->InternLabelValue(label_names_[i], canonical[i]);
    }
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : children_) {
    if (entry.labels == canonical) return *entry.child;
  }
  children_.push_back({std::move(canonical), MakeChild()});
  return *children_.back().child;
}

// The registry the instrumented layers report to; nullptr (the default)
// disables collection everywhere. The registry is not owned and must
// outlive its installation. Installation is process-global and atomic;
// swap only between runs, not while instrumented code is executing.
MetricRegistry* ProcessMetrics();
void InstallProcessMetrics(MetricRegistry* registry);

}  // namespace crowdtruth::obs

#endif  // CROWDTRUTH_OBS_METRICS_H_
