// Minimal dependency-free HTTP exporter for MetricRegistry.
//
// Single-threaded and poll-based by design: the server owns no thread.
// The host loop (crowdtruth_stream's replay loop, a bench driver, a test)
// calls Poll() periodically; each call accepts pending connections with a
// non-blocking poll(2), reads whatever request bytes are available, and
// answers complete requests. A scraper therefore observes the process
// without introducing any concurrency into it — exposition reads the
// registry with the same thread-safe snapshots the instrumented code
// writes through.
//
// Endpoints:
//   GET /metrics       Prometheus text exposition (format 0.0.4)
//   GET /metrics.json  the same registry as JSON
//   GET /healthz       200 "ok" liveness probe
// Anything else answers 404; non-GET methods answer 405. Connections are
// close-after-response (HTTP/1.0 style), which keeps the state machine
// trivial and is exactly what curl and Prometheus scrapers do per request.
#ifndef CROWDTRUTH_OBS_HTTP_EXPORTER_H_
#define CROWDTRUTH_OBS_HTTP_EXPORTER_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace crowdtruth::obs {

class MetricsHttpServer {
 public:
  explicit MetricsHttpServer(MetricRegistry* registry)
      : registry_(registry) {}
  ~MetricsHttpServer() { Stop(); }
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // Binds 127.0.0.1:`port` (0 picks an ephemeral port — see port()) and
  // starts listening. The listener and all client sockets are
  // non-blocking; nothing is served until Poll() runs.
  util::Status Start(int port);

  // The bound port; 0 before Start().
  int port() const { return port_; }
  bool serving() const { return listen_fd_ >= 0; }

  // Accepts pending connections and answers complete requests, waiting at
  // most `timeout_ms` for activity (0 = pure poll, never blocks). Returns
  // the number of requests answered. Safe to call when not started
  // (returns 0). Signal-interrupted syscalls (EINTR) are retried, never
  // reported as inactivity or connection errors.
  int Poll(int timeout_ms = 0);

  // Closes the listener and any in-flight connections.
  void Stop();

 private:
  struct Connection {
    int fd = -1;
    std::string request;   // bytes read so far
    std::string response;  // bytes still to write
  };

  void HandleReadable(Connection* connection);
  bool FlushWrites(Connection* connection);  // false once fully written
  std::string BuildResponse(const std::string& request_line);

  MetricRegistry* registry_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::vector<Connection> connections_;
};

}  // namespace crowdtruth::obs

#endif  // CROWDTRUTH_OBS_HTTP_EXPORTER_H_
