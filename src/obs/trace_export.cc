#include "obs/trace_export.h"

#include <utility>

namespace crowdtruth::obs {

util::JsonValue TraceEventsJson(const std::vector<SpanRecord>& spans,
                                int64_t dropped_spans) {
  util::JsonValue events = util::JsonValue::Array();
  for (const SpanRecord& span : spans) {
    util::JsonValue event = util::JsonValue::Object();
    event.Set("name", span.name);
    event.Set("cat", "crowdtruth");
    event.Set("ph", "X");  // complete event: ts + dur in microseconds
    event.Set("ts", span.start_seconds * 1e6);
    event.Set("dur", span.duration_seconds * 1e6);
    event.Set("pid", 1);
    event.Set("tid", static_cast<int64_t>(span.thread_index));
    util::JsonValue args = util::JsonValue::Object();
    args.Set("trace_id", static_cast<int64_t>(span.trace_id));
    args.Set("span_id", static_cast<int64_t>(span.span_id));
    args.Set("parent_id", static_cast<int64_t>(span.parent_id));
    for (const auto& [key, value] : span.annotations) {
      args.Set(key, value);
    }
    event.Set("args", std::move(args));
    events.Append(std::move(event));
  }
  util::JsonValue other = util::JsonValue::Object();
  other.Set("format", "crowdtruth_trace");
  other.Set("dropped_spans", dropped_spans);
  util::JsonValue root = util::JsonValue::Object();
  root.Set("traceEvents", std::move(events));
  root.Set("displayTimeUnit", "ms");
  root.Set("otherData", std::move(other));
  return root;
}

std::string TraceJsonText(const FlightRecorder& recorder) {
  return TraceEventsJson(recorder.Dump(), recorder.dropped()).Dump(2) + "\n";
}

util::Status WriteTraceFile(const std::string& path,
                            const FlightRecorder& recorder) {
  return util::WriteJsonFile(
      path, TraceEventsJson(recorder.Dump(), recorder.dropped()));
}

}  // namespace crowdtruth::obs
