#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace crowdtruth::obs {

namespace {

constexpr size_t kMaxRequestBytes = 16 * 1024;

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string StatusLine(int code) {
  switch (code) {
    case 200:
      return "HTTP/1.0 200 OK\r\n";
    case 404:
      return "HTTP/1.0 404 Not Found\r\n";
    case 405:
      return "HTTP/1.0 405 Method Not Allowed\r\n";
    default:
      return "HTTP/1.0 400 Bad Request\r\n";
  }
}

std::string MakeResponse(int code, const std::string& content_type,
                         const std::string& body) {
  std::string response = StatusLine(code);
  response += "Content-Type: " + content_type + "\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  return response;
}

}  // namespace

util::Status MetricsHttpServer::Start(int port) {
  if (listen_fd_ >= 0) {
    return util::Status::InvalidArgument("metrics server already started");
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::IoError(std::string("socket: ") +
                                  std::strerror(errno));
  }
  const int reuse = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string message = std::string("bind 127.0.0.1:") +
                                std::to_string(port) + ": " +
                                std::strerror(errno);
    close(fd);
    return util::Status::IoError(message);
  }
  if (listen(fd, 16) != 0) {
    const std::string message = std::string("listen: ") +
                                std::strerror(errno);
    close(fd);
    return util::Status::IoError(message);
  }
  if (!SetNonBlocking(fd)) {
    close(fd);
    return util::Status::IoError("cannot make listener non-blocking");
  }

  socklen_t addr_len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    close(fd);
    return util::Status::IoError("getsockname failed");
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  return util::Status::Ok();
}

void MetricsHttpServer::Stop() {
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  for (Connection& connection : connections_) {
    if (connection.fd >= 0) close(connection.fd);
  }
  connections_.clear();
  port_ = 0;
}

std::string MetricsHttpServer::BuildResponse(
    const std::string& request_line) {
  // "METHOD SP PATH SP VERSION"; tolerate a missing version.
  const size_t method_end = request_line.find(' ');
  if (method_end == std::string::npos) {
    return MakeResponse(400, "text/plain", "bad request\n");
  }
  const std::string method = request_line.substr(0, method_end);
  size_t path_end = request_line.find(' ', method_end + 1);
  if (path_end == std::string::npos) path_end = request_line.size();
  std::string path =
      request_line.substr(method_end + 1, path_end - method_end - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET") {
    return MakeResponse(405, "text/plain", "method not allowed\n");
  }
  if (path == "/healthz") {
    return MakeResponse(200, "text/plain", "ok\n");
  }
  if (path == "/metrics") {
    return MakeResponse(200, "text/plain; version=0.0.4",
                        registry_->PrometheusText());
  }
  if (path == "/metrics.json") {
    return MakeResponse(200, "application/json",
                        registry_->ToJson().Dump(2) + "\n");
  }
  return MakeResponse(404, "text/plain", "not found\n");
}

void MetricsHttpServer::HandleReadable(Connection* connection) {
  char buffer[4096];
  while (true) {
    const ssize_t got = read(connection->fd, buffer, sizeof(buffer));
    if (got < 0 && errno == EINTR) continue;
    if (got > 0) {
      connection->request.append(buffer, static_cast<size_t>(got));
      if (connection->request.size() > kMaxRequestBytes) {
        connection->response = MakeResponse(400, "text/plain",
                                            "request too large\n");
        return;
      }
      continue;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or error: if we never saw a full header, drop the connection.
    if (connection->request.find("\r\n\r\n") == std::string::npos &&
        connection->request.find("\n\n") == std::string::npos) {
      close(connection->fd);
      connection->fd = -1;
    }
    break;
  }
  if (connection->fd < 0 || !connection->response.empty()) return;
  // Serve as soon as the header block is complete (GET has no body).
  if (connection->request.find("\r\n\r\n") != std::string::npos ||
      connection->request.find("\n\n") != std::string::npos) {
    const size_t line_end = connection->request.find_first_of("\r\n");
    connection->response =
        BuildResponse(connection->request.substr(0, line_end));
  }
}

bool MetricsHttpServer::FlushWrites(Connection* connection) {
  while (!connection->response.empty()) {
    const ssize_t wrote = write(connection->fd, connection->response.data(),
                                connection->response.size());
    if (wrote > 0) {
      connection->response.erase(0, static_cast<size_t>(wrote));
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    break;  // error: give up on the connection
  }
  close(connection->fd);
  connection->fd = -1;
  return false;
}

int MetricsHttpServer::Poll(int timeout_ms) {
  if (listen_fd_ < 0) return 0;

  std::vector<pollfd> fds;
  fds.push_back({listen_fd_, POLLIN, 0});
  for (const Connection& connection : connections_) {
    short events = POLLIN;
    if (!connection.response.empty()) events |= POLLOUT;
    fds.push_back({connection.fd, events, 0});
  }
  // A signal (SIGCHLD from a harness, a profiler tick) interrupting the
  // wait is not "no activity": retry so callers never lose a poll cycle
  // to EINTR.
  int ready;
  do {
    ready = poll(fds.data(), fds.size(), timeout_ms);
  } while (ready < 0 && errno == EINTR);
  if (ready <= 0) return 0;

  int served = 0;
  if ((fds[0].revents & POLLIN) != 0) {
    while (true) {
      const int client = accept(listen_fd_, nullptr, nullptr);
      if (client < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (!SetNonBlocking(client)) {
        close(client);
        continue;
      }
      connections_.push_back({client, "", ""});
    }
  }

  for (size_t i = 0; i < connections_.size(); ++i) {
    Connection& connection = connections_[i];
    // Newly accepted connections are not in `fds`; probe them too.
    const bool in_poll_set = i + 1 < fds.size();
    const short revents = in_poll_set ? fds[i + 1].revents : POLLIN;
    if (connection.fd < 0) continue;
    if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
        connection.response.empty()) {
      HandleReadable(&connection);
    }
    if (connection.fd >= 0 && !connection.response.empty()) {
      if (!FlushWrites(&connection)) ++served;
    }
  }
  connections_.erase(
      std::remove_if(connections_.begin(), connections_.end(),
                     [](const Connection& c) { return c.fd < 0; }),
      connections_.end());
  return served;
}

}  // namespace crowdtruth::obs
