#include "obs/span.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <utility>

namespace crowdtruth::obs {

namespace {

using SteadyClock = std::chrono::steady_clock;

// One monotonic epoch for every span in the process, captured at the
// first armed span so early spans do not start at huge offsets.
SteadyClock::time_point ProcessEpoch() {
  static const SteadyClock::time_point epoch = SteadyClock::now();
  return epoch;
}

double SecondsSinceEpoch() {
  return std::chrono::duration<double>(SteadyClock::now() - ProcessEpoch())
      .count();
}

std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint64_t> g_next_trace_id{1};

}  // namespace

struct Span::Active {
  FlightRecorder* recorder = nullptr;
  Active* parent = nullptr;  // the span below this one on the thread stack
  SpanRecord record;
};

namespace {
// The innermost open armed span on this thread; new spans link to it.
thread_local Span::Active* t_current_span = nullptr;
}  // namespace

Span::Span(const char* name) {
  FlightRecorder* const recorder = ProcessFlightRecorder();
  if (recorder == nullptr) return;
  record_ = new Active();
  record_->recorder = recorder;
  record_->parent = t_current_span;
  record_->record.name = name;
  record_->record.span_id =
      g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  if (t_current_span != nullptr) {
    record_->record.trace_id = t_current_span->record.trace_id;
    record_->record.parent_id = t_current_span->record.span_id;
  } else {
    record_->record.trace_id =
        g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
  }
  t_current_span = record_;
  record_->record.start_seconds = SecondsSinceEpoch();
}

Span::~Span() {
  if (record_ == nullptr) return;
  record_->record.duration_seconds =
      SecondsSinceEpoch() - record_->record.start_seconds;
  // Pop even if an uninstall raced the span: the stack must stay balanced.
  if (t_current_span == record_) t_current_span = record_->parent;
  record_->recorder->Record(std::move(record_->record));
  delete record_;
}

void Span::Annotate(const char* key, const std::string& value) {
  if (record_ == nullptr) return;
  record_->record.annotations.emplace_back(key, value);
}

void Span::Annotate(const char* key, int64_t value) {
  if (record_ == nullptr) return;
  record_->record.annotations.emplace_back(key, std::to_string(value));
}

void Span::Annotate(const char* key, double value) {
  if (record_ == nullptr) return;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  record_->record.annotations.emplace_back(key, buffer);
}

SpanContext Span::context() const {
  SpanContext context;
  if (record_ == nullptr) return context;
  context.trace_id = record_->record.trace_id;
  context.span_id = record_->record.span_id;
  context.parent_id = record_->record.parent_id;
  return context;
}

}  // namespace crowdtruth::obs
