#include "obs/tdigest.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace crowdtruth::obs {

namespace {

constexpr double kPi = 3.14159265358979323846;

// The k1 scale function and its inverse: k(q) = (delta / 2pi) asin(2q - 1).
// Cluster boundaries drawn in k-space give clusters O(1) k-width, which is
// narrow (accurate) near q=0 and q=1 and wide in the body.
double ScaleK(double q, double compression) {
  return compression / (2.0 * kPi) * std::asin(2.0 * q - 1.0);
}

double ScaleQ(double k, double compression) {
  return (std::sin(k * 2.0 * kPi / compression) + 1.0) / 2.0;
}

bool CentroidLess(const TDigestCentroid& a, const TDigestCentroid& b) {
  if (a.mean != b.mean) return a.mean < b.mean;
  return a.weight < b.weight;
}

}  // namespace

TDigest::TDigest(double compression)
    : compression_(compression < 10.0 ? 10.0 : compression) {
  buffer_.reserve(static_cast<size_t>(compression_));
}

void TDigest::Add(double value, double weight) {
  if (!std::isfinite(value) || !(weight > 0.0)) return;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += static_cast<int64_t>(weight);
  sum_ += value * weight;
  buffer_.push_back({value, weight});
  if (buffer_.size() >= static_cast<size_t>(compression_)) Compress();
}

void TDigest::Merge(const TDigest& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  // Both sides' compacted and pending centroids join one multiset. The
  // compaction is deferred to the next read: an N-way merge then feeds the
  // identical multiset into one sorted compaction regardless of merge
  // order, which is what makes shard all-reduces order-stable. Memory
  // between reads is bounded by ~2x compression centroids per merge.
  buffer_.insert(buffer_.end(), other.centroids_.begin(),
                 other.centroids_.end());
  buffer_.insert(buffer_.end(), other.buffer_.begin(), other.buffer_.end());
}

void TDigest::Compress() const {
  if (buffer_.empty()) return;
  std::vector<TDigestCentroid> merged;
  merged.reserve(centroids_.size() + buffer_.size());
  merged.insert(merged.end(), centroids_.begin(), centroids_.end());
  merged.insert(merged.end(), buffer_.begin(), buffer_.end());
  buffer_.clear();
  std::sort(merged.begin(), merged.end(), CentroidLess);

  double total = 0.0;
  for (const TDigestCentroid& c : merged) total += c.weight;

  centroids_.clear();
  TDigestCentroid current = merged.front();
  double weight_before = 0.0;  // weight of clusters already emitted
  double q_limit = ScaleQ(ScaleK(0.0, compression_) + 1.0, compression_);
  for (size_t i = 1; i < merged.size(); ++i) {
    const TDigestCentroid& next = merged[i];
    const double q = (weight_before + current.weight + next.weight) / total;
    if (q <= q_limit) {
      // Absorb: weighted-mean update in a fixed evaluation order, so the
      // same sorted input always produces the same bits.
      const double w = current.weight + next.weight;
      current.mean += (next.weight / w) * (next.mean - current.mean);
      current.weight = w;
    } else {
      centroids_.push_back(current);
      weight_before += current.weight;
      q_limit = ScaleQ(ScaleK(weight_before / total, compression_) + 1.0,
                       compression_);
      current = next;
    }
  }
  centroids_.push_back(current);
}

const std::vector<TDigestCentroid>& TDigest::Centroids() const {
  Compress();
  return centroids_;
}

double TDigest::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  Compress();
  q = std::clamp(q, 0.0, 1.0);
  double total = 0.0;
  for (const TDigestCentroid& c : centroids_) total += c.weight;
  const double index = q * total;

  // Each centroid is centered at its cumulative-weight midpoint; ranks
  // before the first midpoint interpolate from min, ranks past the last
  // from max.
  double cumulative = 0.0;
  double prev_midpoint = 0.0;
  double prev_mean = min_;
  for (const TDigestCentroid& c : centroids_) {
    const double midpoint = cumulative + c.weight / 2.0;
    if (index < midpoint) {
      const double span = midpoint - prev_midpoint;
      const double fraction =
          span > 0.0 ? (index - prev_midpoint) / span : 0.0;
      return prev_mean + fraction * (c.mean - prev_mean);
    }
    cumulative += c.weight;
    prev_midpoint = midpoint;
    prev_mean = c.mean;
  }
  const double span = total - prev_midpoint;
  const double fraction = span > 0.0 ? (index - prev_midpoint) / span : 1.0;
  return prev_mean + std::min(1.0, fraction) * (max_ - prev_mean);
}

util::JsonValue TDigest::ToJson() const {
  Compress();
  util::JsonValue root = util::JsonValue::Object();
  root.Set("format", "crowdtruth_tdigest");
  root.Set("version", 1);
  root.Set("compression", compression_);
  root.Set("count", count_);
  root.Set("sum", sum_);
  root.Set("min", min_);
  root.Set("max", max_);
  util::JsonValue centroids = util::JsonValue::Array();
  for (const TDigestCentroid& c : centroids_) {
    util::JsonValue entry = util::JsonValue::Object();
    entry.Set("m", c.mean);
    entry.Set("w", c.weight);
    centroids.Append(std::move(entry));
  }
  root.Set("centroids", std::move(centroids));
  return root;
}

util::Status TDigest::FromJson(const util::JsonValue& doc, TDigest* out) {
  const util::JsonValue* format = doc.Find("format");
  if (format == nullptr || format->kind() != util::JsonValue::Kind::kString ||
      format->string() != "crowdtruth_tdigest") {
    return util::Status::InvalidArgument(
        "not a crowdtruth_tdigest document");
  }
  const util::JsonValue* version = doc.Find("version");
  if (version == nullptr ||
      version->kind() != util::JsonValue::Kind::kNumber) {
    return util::Status::InvalidArgument(
        "tdigest field \"version\" missing or not a number");
  }
  if (static_cast<int>(version->number()) != 1) {
    return util::Status::ValidationError(
        "unsupported tdigest version " +
        std::to_string(static_cast<int>(version->number())));
  }
  const char* const scalar_fields[] = {"compression", "count", "sum", "min",
                                       "max"};
  double scalars[5];
  for (int i = 0; i < 5; ++i) {
    const util::JsonValue* field = doc.Find(scalar_fields[i]);
    if (field == nullptr ||
        field->kind() != util::JsonValue::Kind::kNumber) {
      return util::Status::InvalidArgument(
          std::string("tdigest field \"") + scalar_fields[i] +
          "\" missing or not a number");
    }
    scalars[i] = field->number();
  }
  const util::JsonValue* centroids = doc.Find("centroids");
  if (centroids == nullptr ||
      centroids->kind() != util::JsonValue::Kind::kArray) {
    return util::Status::InvalidArgument(
        "tdigest field \"centroids\" missing or not an array");
  }
  TDigest digest(scalars[0]);
  digest.count_ = static_cast<int64_t>(scalars[1]);
  digest.sum_ = scalars[2];
  digest.min_ = scalars[3];
  digest.max_ = scalars[4];
  for (const util::JsonValue& item : centroids->items()) {
    const util::JsonValue* mean = item.Find("m");
    const util::JsonValue* weight = item.Find("w");
    if (mean == nullptr || mean->kind() != util::JsonValue::Kind::kNumber ||
        weight == nullptr ||
        weight->kind() != util::JsonValue::Kind::kNumber) {
      return util::Status::InvalidArgument(
          "tdigest centroid missing numeric \"m\"/\"w\"");
    }
    if (!std::isfinite(mean->number()) || !(weight->number() > 0.0)) {
      return util::Status::ValidationError(
          "tdigest centroid with non-finite mean or non-positive weight");
    }
    digest.centroids_.push_back({mean->number(), weight->number()});
  }
  if (!std::is_sorted(digest.centroids_.begin(), digest.centroids_.end(),
                      CentroidLess)) {
    return util::Status::ValidationError(
        "tdigest centroids not sorted by (mean, weight)");
  }
  *out = std::move(digest);
  return util::Status::Ok();
}

}  // namespace crowdtruth::obs
