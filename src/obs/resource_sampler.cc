#include "obs/resource_sampler.h"

#include <sys/resource.h>

#include <algorithm>
#include <string>

#include "util/parallel.h"

namespace crowdtruth::obs {

ResourceUsage SampleResourceUsage() {
  ResourceUsage usage;
  struct rusage raw;
  if (getrusage(RUSAGE_SELF, &raw) != 0) return usage;
  usage.user_cpu_seconds =
      raw.ru_utime.tv_sec + raw.ru_utime.tv_usec * 1e-6;
  usage.system_cpu_seconds =
      raw.ru_stime.tv_sec + raw.ru_stime.tv_usec * 1e-6;
  // Linux reports ru_maxrss in kilobytes.
  usage.peak_rss_bytes = static_cast<int64_t>(raw.ru_maxrss) * 1024;
  return usage;
}

util::JsonValue ResourceUsageJson(const ResourceUsage& usage) {
  util::JsonValue json = util::JsonValue::Object();
  json.Set("user_cpu_seconds", usage.user_cpu_seconds);
  json.Set("system_cpu_seconds", usage.system_cpu_seconds);
  json.Set("peak_rss_bytes", usage.peak_rss_bytes);
  return json;
}

void RegisterProcessCollectors(MetricRegistry* registry) {
  Gauge& peak_rss = registry->AddGauge(
      "crowdtruth_process_peak_rss_bytes",
      "High-water-mark resident set size of the process.");
  Counter& user_cpu = registry->AddCounter(
      "crowdtruth_process_cpu_user_seconds_total",
      "Cumulative user-mode CPU consumed by the process.");
  Counter& system_cpu = registry->AddCounter(
      "crowdtruth_process_cpu_system_seconds_total",
      "Cumulative kernel-mode CPU consumed by the process.");
  Counter& regions = registry->AddCounter(
      "crowdtruth_parallel_regions_total",
      "ParallelForSlotted regions executed (EM kernel sharded steps).");
  Counter& tasks = registry->AddCounter(
      "crowdtruth_parallel_tasks_total",
      "Task invocations executed across all ParallelForSlotted regions.");
  Family<Counter>& slot_tasks = registry->AddCounterFamily(
      "crowdtruth_parallel_slot_tasks_total",
      "Task invocations executed by each worker-pool slot (0 = caller).",
      {"slot"});
  Gauge& imbalance = registry->AddGauge(
      "crowdtruth_parallel_slot_imbalance",
      "Busiest slot's task share divided by the mean share; 1.0 is "
      "perfectly balanced.");

  registry->AddCollectionHook([&peak_rss, &user_cpu, &system_cpu, &regions,
                               &tasks, &slot_tasks, &imbalance] {
    const ResourceUsage usage = SampleResourceUsage();
    peak_rss.Set(static_cast<double>(usage.peak_rss_bytes));
    user_cpu.AdvanceTo(usage.user_cpu_seconds);
    system_cpu.AdvanceTo(usage.system_cpu_seconds);

    const util::SlottedPoolStats pool = util::GetSlottedPoolStats();
    regions.AdvanceTo(static_cast<double>(pool.regions));
    tasks.AdvanceTo(static_cast<double>(pool.tasks));
    int64_t busiest = 0;
    for (size_t slot = 0; slot < pool.per_slot_tasks.size(); ++slot) {
      slot_tasks.WithLabels({std::to_string(slot)})
          .AdvanceTo(static_cast<double>(pool.per_slot_tasks[slot]));
      busiest = std::max(busiest, pool.per_slot_tasks[slot]);
    }
    if (pool.tasks > 0 && !pool.per_slot_tasks.empty()) {
      const double mean = static_cast<double>(pool.tasks) /
                          static_cast<double>(pool.per_slot_tasks.size());
      imbalance.Set(static_cast<double>(busiest) / mean);
    }
  });
}

}  // namespace crowdtruth::obs
