// Process resource sampling (getrusage) and the standard collection hooks
// that surface process- and pool-level state as registry gauges.
//
// SampleResourceUsage is a cheap point-in-time snapshot callers can embed
// directly (experiments::RunReport carries one per run).
// RegisterProcessCollectors wires the same snapshot — plus the
// util::ParallelForSlotted pool counters — into a MetricRegistry as gauges
// and counters refreshed by a collection hook on every exposition, so a
// scrape always sees current values without anything polling in between.
#ifndef CROWDTRUTH_OBS_RESOURCE_SAMPLER_H_
#define CROWDTRUTH_OBS_RESOURCE_SAMPLER_H_

#include <cstdint>

#include "obs/metrics.h"
#include "util/json_writer.h"

namespace crowdtruth::obs {

struct ResourceUsage {
  // Cumulative CPU consumed by the process (all threads).
  double user_cpu_seconds = 0.0;
  double system_cpu_seconds = 0.0;
  // High-water-mark resident set size.
  int64_t peak_rss_bytes = 0;
};

// Snapshot via getrusage(RUSAGE_SELF); zeros if the call fails.
ResourceUsage SampleResourceUsage();

// {"user_cpu_seconds", "system_cpu_seconds", "peak_rss_bytes"}.
util::JsonValue ResourceUsageJson(const ResourceUsage& usage);

// Registers the process-level metrics on `registry` and a collection hook
// that refreshes them before every exposition:
//   crowdtruth_process_peak_rss_bytes           gauge
//   crowdtruth_process_cpu_user_seconds_total   counter
//   crowdtruth_process_cpu_system_seconds_total counter
//   crowdtruth_parallel_regions_total           counter
//   crowdtruth_parallel_tasks_total             counter
//   crowdtruth_parallel_slot_tasks_total{slot}  counter
//   crowdtruth_parallel_slot_imbalance          gauge (max/mean slot share)
// Call once per registry, before installing it.
void RegisterProcessCollectors(MetricRegistry* registry);

}  // namespace crowdtruth::obs

#endif  // CROWDTRUTH_OBS_RESOURCE_SAMPLER_H_
