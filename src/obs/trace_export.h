// Chrome trace_event export for flight-recorder dumps: the JSON object
// format that chrome://tracing and https://ui.perfetto.dev load directly.
//
// Each SpanRecord becomes one complete ("ph": "X") event; span identity
// and parentage ride in "args" (trace_id / span_id / parent_id, plus the
// span's annotations) so tooling — and tools/serve_e2e.sh's span-tree
// assertion — can rebuild the causal tree from the file alone.
#ifndef CROWDTRUTH_OBS_TRACE_EXPORT_H_
#define CROWDTRUTH_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "util/json_writer.h"
#include "util/status.h"

namespace crowdtruth::obs {

// {"traceEvents": [...], "displayTimeUnit": "ms",
//  "otherData": {"format": "crowdtruth_trace", "dropped_spans": N}}.
util::JsonValue TraceEventsJson(const std::vector<SpanRecord>& spans,
                                int64_t dropped_spans = 0);

// Dumps `recorder` and renders it in one step (the /debug/trace body).
std::string TraceJsonText(const FlightRecorder& recorder);

// Dumps `recorder` to `path` as trace-event JSON (the --trace_out flag).
util::Status WriteTraceFile(const std::string& path,
                            const FlightRecorder& recorder);

}  // namespace crowdtruth::obs

#endif  // CROWDTRUTH_OBS_TRACE_EXPORT_H_
