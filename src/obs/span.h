// Span tracing: RAII scopes that record causally-linked timing into the
// process-wide flight recorder (obs/flight_recorder.h).
//
//   obs::Span span("tenant_ingest");
//   span.Annotate("tenant", name);
//   ...                       // nested Spans become children automatically
//                             // ~Span records {name, start, duration,
//                             //  parent, annotations}
//
// Parent/child links come from a thread-local span stack: a Span's parent
// is whichever Span was open on the same thread when it was constructed,
// so one ingest request produces one coherent tree — server http_request
// -> tenant_ingest -> validate_records / engine_observe -> engine_resync
// -> em_run -> em_truth_step / em_quality_step — with no context threading
// through call signatures. Roots mint a fresh trace_id; children inherit.
//
// Cost discipline mirrors the metric registry: with no recorder installed
// a Span is one relaxed atomic load and a branch (no clock reads, no
// allocation), and recording never steers — spans observe the run, they
// never change what it computes (pinned bit-identical by
// method_threading_test).
//
// Timing uses the same steady_clock as util::Stopwatch, zeroed at the
// first armed span, so all spans share one monotonic timeline.
#ifndef CROWDTRUTH_OBS_SPAN_H_
#define CROWDTRUTH_OBS_SPAN_H_

#include <cstdint>
#include <string>

#include "obs/flight_recorder.h"

namespace crowdtruth::obs {

// The identity of a span, for callers that need to link work across an
// explicit boundary instead of the implicit thread-local stack.
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
};

class Span {
 public:
  // `name` must outlive the span (string literals at every call site); a
  // disarmed span never copies it.
  explicit Span(const char* name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  // Attaches a key:value annotation; no-ops when disarmed.
  void Annotate(const char* key, const std::string& value);
  void Annotate(const char* key, int64_t value);
  void Annotate(const char* key, double value);

  // True when a recorder was installed at construction.
  bool armed() const { return record_ != nullptr; }
  SpanContext context() const;

  // Implementation detail, public only so span.cc can keep the
  // thread-local stack of open spans at namespace scope.
  struct Active;

 private:
  // Heap-allocated only when armed, so the disarmed Span is a pointer and
  // a branch on the stack.
  Active* record_ = nullptr;
};

}  // namespace crowdtruth::obs

#endif  // CROWDTRUTH_OBS_SPAN_H_
