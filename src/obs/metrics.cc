#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace crowdtruth::obs {

namespace {

// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// {label="value",...} with an optional extra label (histograms' le=).
std::string LabelSet(const std::vector<std::string>& names,
                     const std::vector<std::string>& values,
                     const std::string& extra_name = "",
                     const std::string& extra_value = "") {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    out += out.empty() ? "{" : ",";
    out += names[i] + "=\"" + EscapeLabelValue(values[i]) + "\"";
  }
  if (!extra_name.empty()) {
    out += out.empty() ? "{" : ",";
    out += extra_name + "=\"" + extra_value + "\"";
  }
  if (!out.empty()) out += "}";
  return out;
}

util::JsonValue LabelsJson(const std::vector<std::string>& names,
                           const std::vector<std::string>& values) {
  util::JsonValue labels = util::JsonValue::Object();
  for (size_t i = 0; i < names.size(); ++i) labels.Set(names[i], values[i]);
  return labels;
}

// Compact rendering for `le` bucket labels (1e-06, 0.25, 4096); shortest
// %g form, unlike JsonNumber's round-trip-exact %.17g.
std::string FormatBound(double bound) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", bound);
  return buffer;
}

}  // namespace

HistogramBuckets HistogramBuckets::LogScale(double first, double factor,
                                            int count) {
  CROWDTRUTH_CHECK(first > 0.0 && factor > 1.0 && count > 0);
  HistogramBuckets buckets;
  buckets.bounds.reserve(count);
  double bound = first;
  for (int i = 0; i < count; ++i) {
    buckets.bounds.push_back(bound);
    bound *= factor;
  }
  return buckets;
}

Histogram::Histogram(const HistogramBuckets& buckets)
    : bounds_(buckets.bounds),
      buckets_(new std::atomic<int64_t>[buckets.bounds.size() + 1]) {
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    CROWDTRUTH_CHECK(bounds_[i] < bounds_[i + 1]);
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  size_t bucket = bounds_.size();  // +Inf overflow slot
  if (std::isfinite(value)) {
    // `le` is an inclusive upper bound, so the first bound >= value wins.
    bucket = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
             bounds_.begin();
    internal::AtomicAdd(sum_, value);
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snapshot;
  snapshot.cumulative.reserve(bounds_.size() + 1);
  int64_t running = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    snapshot.cumulative.push_back(running);
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  return snapshot;
}

template <>
const char* Family<Counter>::kind() const {
  return "counter";
}
template <>
const char* Family<Gauge>::kind() const {
  return "gauge";
}
template <>
const char* Family<Histogram>::kind() const {
  return "histogram";
}
template <>
const char* Family<Digest>::kind() const {
  return "summary";
}

template <>
std::unique_ptr<Counter> Family<Counter>::MakeChild() const {
  return std::make_unique<Counter>();
}
template <>
std::unique_ptr<Gauge> Family<Gauge>::MakeChild() const {
  return std::make_unique<Gauge>();
}
template <>
std::unique_ptr<Histogram> Family<Histogram>::MakeChild() const {
  return std::make_unique<Histogram>(buckets_);
}
template <>
std::unique_ptr<Digest> Family<Digest>::MakeChild() const {
  return std::make_unique<Digest>(digest_options_);
}

template <typename T>
Family<T>& MetricRegistry::AddFamily(const std::string& name,
                                     const std::string& help,
                                     const std::vector<std::string>& labels,
                                     const HistogramBuckets* buckets,
                                     const DigestOptions* digest_options) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& family : families_) {
    if (family->name() != name) continue;
    auto* typed = dynamic_cast<Family<T>*>(family.get());
    CROWDTRUTH_CHECK(typed != nullptr);  // same name, different kind
    CROWDTRUTH_CHECK(typed->label_names() == labels);
    return *typed;
  }
  auto family = std::make_unique<Family<T>>();
  family->name_ = name;
  family->help_ = help;
  family->label_names_ = labels;
  family->registry_ = this;
  if (buckets != nullptr) family->buckets_ = *buckets;
  if (digest_options != nullptr) family->digest_options_ = *digest_options;
  Family<T>& ref = *family;
  families_.push_back(std::move(family));
  return ref;
}

template <typename T>
Family<T>* MetricRegistry::FindFamily(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& family : families_) {
    if (family->name() == name) {
      return dynamic_cast<Family<T>*>(family.get());
    }
  }
  return nullptr;
}

Family<Counter>* MetricRegistry::FindCounterFamily(const std::string& name) {
  return FindFamily<Counter>(name);
}

Family<Gauge>* MetricRegistry::FindGaugeFamily(const std::string& name) {
  return FindFamily<Gauge>(name);
}

Family<Histogram>* MetricRegistry::FindHistogramFamily(
    const std::string& name) {
  return FindFamily<Histogram>(name);
}

Family<Digest>* MetricRegistry::FindDigestFamily(const std::string& name) {
  return FindFamily<Digest>(name);
}

void MetricRegistry::SetLabelCardinalityCap(const std::string& name, int cap,
                                            const std::string& overflow_value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (cap <= 0) {
    label_caps_.erase(name);
    return;
  }
  LabelCap& entry = label_caps_[name];
  entry.cap = cap;
  entry.overflow_value = overflow_value;
}

std::string MetricRegistry::InternLabelValue(const std::string& name,
                                             const std::string& value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = label_caps_.find(name);
  if (it == label_caps_.end()) return value;
  LabelCap& cap = it->second;
  if (value == cap.overflow_value) return value;
  if (cap.values.count(value) > 0) return value;
  if (static_cast<int>(cap.values.size()) < cap.cap) {
    cap.values.insert(value);
    return value;
  }
  return cap.overflow_value;
}

int MetricRegistry::LabelCardinality(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = label_caps_.find(name);
  return it == label_caps_.end()
             ? 0
             : static_cast<int>(it->second.values.size());
}

Counter& MetricRegistry::AddCounter(const std::string& name,
                                    const std::string& help) {
  return AddFamily<Counter>(name, help, {}, nullptr).WithLabels({});
}

Gauge& MetricRegistry::AddGauge(const std::string& name,
                                const std::string& help) {
  return AddFamily<Gauge>(name, help, {}, nullptr).WithLabels({});
}

Histogram& MetricRegistry::AddHistogram(const std::string& name,
                                        const std::string& help,
                                        const HistogramBuckets& buckets) {
  return AddFamily<Histogram>(name, help, {}, &buckets).WithLabels({});
}

Digest& MetricRegistry::AddDigest(const std::string& name,
                                  const std::string& help,
                                  const DigestOptions& options) {
  return AddFamily<Digest>(name, help, {}, nullptr, &options).WithLabels({});
}

Family<Counter>& MetricRegistry::AddCounterFamily(
    const std::string& name, const std::string& help,
    const std::vector<std::string>& labels) {
  return AddFamily<Counter>(name, help, labels, nullptr);
}

Family<Gauge>& MetricRegistry::AddGaugeFamily(
    const std::string& name, const std::string& help,
    const std::vector<std::string>& labels) {
  return AddFamily<Gauge>(name, help, labels, nullptr);
}

Family<Histogram>& MetricRegistry::AddHistogramFamily(
    const std::string& name, const std::string& help,
    const std::vector<std::string>& labels, const HistogramBuckets& buckets) {
  return AddFamily<Histogram>(name, help, labels, &buckets);
}

Family<Digest>& MetricRegistry::AddDigestFamily(
    const std::string& name, const std::string& help,
    const std::vector<std::string>& labels, const DigestOptions& options) {
  return AddFamily<Digest>(name, help, labels, nullptr, &options);
}

void MetricRegistry::AddCollectionHook(std::function<void()> hook) {
  const std::lock_guard<std::mutex> lock(mutex_);
  hooks_.push_back(std::move(hook));
}

void MetricRegistry::WritePrometheus(std::ostream& out) {
  std::vector<std::function<void()>> hooks;
  std::vector<FamilyBase*> families;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    hooks = hooks_;
    families.reserve(families_.size());
    for (const auto& family : families_) families.push_back(family.get());
  }
  for (const auto& hook : hooks) hook();

  for (FamilyBase* base : families) {
    out << "# HELP " << base->name() << " " << base->help() << "\n";
    out << "# TYPE " << base->name() << " " << base->kind() << "\n";
    const auto& names = base->label_names();
    if (auto* counters = dynamic_cast<Family<Counter>*>(base)) {
      for (const auto& [values, child] : counters->Children()) {
        out << base->name() << LabelSet(names, values) << " "
            << util::JsonNumber(child->Value()) << "\n";
      }
    } else if (auto* gauges = dynamic_cast<Family<Gauge>*>(base)) {
      for (const auto& [values, child] : gauges->Children()) {
        out << base->name() << LabelSet(names, values) << " "
            << util::JsonNumber(child->Value()) << "\n";
      }
    } else if (auto* histograms = dynamic_cast<Family<Histogram>*>(base)) {
      for (const auto& [values, child] : histograms->Children()) {
        const Histogram::Snapshot snap = child->Snap();
        const auto& bounds = child->bounds();
        for (size_t i = 0; i < bounds.size(); ++i) {
          out << base->name() << "_bucket"
              << LabelSet(names, values, "le", FormatBound(bounds[i])) << " "
              << snap.cumulative[i] << "\n";
        }
        out << base->name() << "_bucket"
            << LabelSet(names, values, "le", "+Inf") << " "
            << snap.cumulative.back() << "\n";
        out << base->name() << "_sum" << LabelSet(names, values) << " "
            << util::JsonNumber(snap.sum) << "\n";
        out << base->name() << "_count" << LabelSet(names, values) << " "
            << snap.count << "\n";
      }
    } else if (auto* digests = dynamic_cast<Family<Digest>*>(base)) {
      for (const auto& [values, child] : digests->Children()) {
        const TDigest snap = child->Snap();
        for (const double q : child->options().quantiles) {
          // Quantile of an empty digest is 0, which the exposition checker
          // accepts; NaN would not survive the sample-value regex.
          out << base->name()
              << LabelSet(names, values, "quantile", FormatBound(q)) << " "
              << util::JsonNumber(snap.Quantile(q)) << "\n";
        }
        out << base->name() << "_sum" << LabelSet(names, values) << " "
            << util::JsonNumber(snap.sum()) << "\n";
        out << base->name() << "_count" << LabelSet(names, values) << " "
            << snap.count() << "\n";
      }
    }
  }
}

std::string MetricRegistry::PrometheusText() {
  std::ostringstream out;
  WritePrometheus(out);
  return out.str();
}

util::JsonValue MetricRegistry::ToJson() {
  std::vector<std::function<void()>> hooks;
  std::vector<FamilyBase*> families;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    hooks = hooks_;
    families.reserve(families_.size());
    for (const auto& family : families_) families.push_back(family.get());
  }
  for (const auto& hook : hooks) hook();

  util::JsonValue metrics = util::JsonValue::Array();
  for (FamilyBase* base : families) {
    util::JsonValue entry = util::JsonValue::Object();
    entry.Set("name", base->name());
    entry.Set("kind", base->kind());
    entry.Set("help", base->help());
    util::JsonValue series = util::JsonValue::Array();
    const auto& names = base->label_names();
    if (auto* counters = dynamic_cast<Family<Counter>*>(base)) {
      for (const auto& [values, child] : counters->Children()) {
        util::JsonValue point = util::JsonValue::Object();
        point.Set("labels", LabelsJson(names, values));
        point.Set("value", child->Value());
        series.Append(std::move(point));
      }
    } else if (auto* gauges = dynamic_cast<Family<Gauge>*>(base)) {
      for (const auto& [values, child] : gauges->Children()) {
        util::JsonValue point = util::JsonValue::Object();
        point.Set("labels", LabelsJson(names, values));
        point.Set("value", child->Value());
        series.Append(std::move(point));
      }
    } else if (auto* histograms = dynamic_cast<Family<Histogram>*>(base)) {
      for (const auto& [values, child] : histograms->Children()) {
        const Histogram::Snapshot snap = child->Snap();
        util::JsonValue point = util::JsonValue::Object();
        point.Set("labels", LabelsJson(names, values));
        point.Set("count", snap.count);
        point.Set("sum", snap.sum);
        util::JsonValue buckets = util::JsonValue::Array();
        const auto& bounds = child->bounds();
        for (size_t i = 0; i < bounds.size(); ++i) {
          util::JsonValue bucket = util::JsonValue::Object();
          bucket.Set("le", bounds[i]);
          bucket.Set("count", snap.cumulative[i]);
          buckets.Append(std::move(bucket));
        }
        point.Set("buckets", std::move(buckets));
        series.Append(std::move(point));
      }
    } else if (auto* digests = dynamic_cast<Family<Digest>*>(base)) {
      for (const auto& [values, child] : digests->Children()) {
        const TDigest snap = child->Snap();
        util::JsonValue point = util::JsonValue::Object();
        point.Set("labels", LabelsJson(names, values));
        point.Set("count", snap.count());
        point.Set("sum", snap.sum());
        util::JsonValue quantiles = util::JsonValue::Array();
        for (const double q : child->options().quantiles) {
          util::JsonValue entry_q = util::JsonValue::Object();
          entry_q.Set("quantile", q);
          entry_q.Set("value", snap.Quantile(q));
          quantiles.Append(std::move(entry_q));
        }
        point.Set("quantiles", std::move(quantiles));
        series.Append(std::move(point));
      }
    }
    entry.Set("series", std::move(series));
    metrics.Append(std::move(entry));
  }

  util::JsonValue root = util::JsonValue::Object();
  root.Set("format", "crowdtruth_metrics");
  root.Set("version", 1);
  root.Set("metrics", std::move(metrics));
  return root;
}

namespace {
std::atomic<MetricRegistry*> g_process_metrics{nullptr};
}  // namespace

MetricRegistry* ProcessMetrics() {
  return g_process_metrics.load(std::memory_order_acquire);
}

void InstallProcessMetrics(MetricRegistry* registry) {
  g_process_metrics.store(registry, std::memory_order_release);
}

}  // namespace crowdtruth::obs
