#include "obs/flight_recorder.h"

#include <algorithm>
#include <atomic>

namespace crowdtruth::obs {

namespace {
std::atomic<uint64_t> g_next_recorder_id{1};
}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config),
      instance_id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {
  if (config_.capacity_per_thread == 0) config_.capacity_per_thread = 1;
}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder::Ring* FlightRecorder::RingForThisThread() {
  // One ring per (recorder, thread): the cache keys on the recorder's
  // process-unique instance id — not its address, which the allocator can
  // reuse — so a thread that outlives one recorder re-registers with the
  // next instead of writing through a dangling pointer.
  thread_local uint64_t cached_owner_id = 0;
  thread_local Ring* cached_ring = nullptr;
  if (cached_owner_id == instance_id_) return cached_ring;
  const std::lock_guard<std::mutex> lock(rings_mutex_);
  rings_.push_back(std::make_unique<Ring>(config_.capacity_per_thread));
  cached_owner_id = instance_id_;
  cached_ring = rings_.back().get();
  return cached_ring;
}

void FlightRecorder::Record(SpanRecord&& record) {
  Ring* ring = RingForThisThread();
  record.thread_index = 0;  // assigned during Dump from ring order
  const std::lock_guard<std::mutex> lock(ring->mutex);
  ring->slots[ring->next] = std::move(record);
  ring->next = (ring->next + 1) % ring->slots.size();
  ++ring->written;
}

std::vector<SpanRecord> FlightRecorder::Dump() const {
  std::vector<const Ring*> rings;
  {
    const std::lock_guard<std::mutex> lock(rings_mutex_);
    rings.reserve(rings_.size());
    for (const auto& ring : rings_) rings.push_back(ring.get());
  }
  std::vector<SpanRecord> out;
  for (size_t r = 0; r < rings.size(); ++r) {
    const Ring* ring = rings[r];
    const std::lock_guard<std::mutex> lock(ring->mutex);
    const size_t capacity = ring->slots.size();
    const size_t filled = std::min<int64_t>(ring->written, capacity);
    // Oldest-first: the ring wraps at `next`, so the oldest retained slot
    // is `next` once the ring has wrapped, 0 before.
    const size_t oldest =
        ring->written > static_cast<int64_t>(capacity) ? ring->next : 0;
    for (size_t i = 0; i < filled; ++i) {
      SpanRecord record = ring->slots[(oldest + i) % capacity];
      record.thread_index = static_cast<uint32_t>(r);
      out.push_back(std::move(record));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_seconds != b.start_seconds) {
                return a.start_seconds < b.start_seconds;
              }
              return a.span_id < b.span_id;
            });
  return out;
}

int64_t FlightRecorder::recorded() const {
  const std::lock_guard<std::mutex> lock(rings_mutex_);
  int64_t total = 0;
  for (const auto& ring : rings_) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    total += ring->written;
  }
  return total;
}

int64_t FlightRecorder::dropped() const {
  const std::lock_guard<std::mutex> lock(rings_mutex_);
  int64_t total = 0;
  for (const auto& ring : rings_) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    const int64_t capacity = static_cast<int64_t>(ring->slots.size());
    if (ring->written > capacity) total += ring->written - capacity;
  }
  return total;
}

namespace {
std::atomic<FlightRecorder*> g_flight_recorder{nullptr};
}  // namespace

FlightRecorder* ProcessFlightRecorder() {
  return g_flight_recorder.load(std::memory_order_acquire);
}

void InstallFlightRecorder(FlightRecorder* recorder) {
  g_flight_recorder.store(recorder, std::memory_order_release);
}

}  // namespace crowdtruth::obs
