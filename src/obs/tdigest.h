// TDigest: a mergeable, bounded-memory quantile sketch (Dunning's merging
// t-digest) for the latency series whose fixed log-scale histogram buckets
// only resolve quantiles to bucket granularity.
//
// Memory is O(compression) centroids regardless of sample count; accuracy
// concentrates at the tails (relative rank error shrinks toward q=0 and
// q=1), which is exactly where the adaptive controller steers — p99, not
// the mean.
//
// Determinism contract (pinned by tests/obs_tdigest_test.cc, mirroring the
// WorkerSummary merge contract): compression sorts the combined centroid
// multiset by (mean, weight) before clustering, so
//
//   * Merge is exactly order-independent — a.Merge(b) and b.Merge(a)
//     produce bit-identical centroid lists, and
//   * an N-way merge in shard order equals the same merge in any other
//     order once the inputs are the same multiset of centroids,
//
// and ToJson/FromJson round-trip through %.17g, so a digest serialized at
// a shard barrier and merged on the coordinator is the digest that was
// sent.
//
// Not thread-safe; the registry wraps one TDigest per metric child behind
// a mutex (see obs::Digest in obs/metrics.h).
#ifndef CROWDTRUTH_OBS_TDIGEST_H_
#define CROWDTRUTH_OBS_TDIGEST_H_

#include <cstdint>
#include <vector>

#include "util/json_writer.h"
#include "util/status.h"

namespace crowdtruth::obs {

struct TDigestCentroid {
  double mean = 0.0;
  double weight = 0.0;
};

class TDigest {
 public:
  // `compression` bounds the centroid count (~2x compression centroids
  // after a compaction); 100 gives ~1% rank error in the body and much
  // better at the tails.
  explicit TDigest(double compression = 100.0);

  // Adds one sample. Non-finite values are dropped (counted in neither
  // count() nor sum()) so one NaN cannot poison the sketch — matching
  // Histogram::Observe's containment policy.
  void Add(double value, double weight = 1.0);

  // Folds `other` into this digest. Deterministically order-independent:
  // compaction is deferred until the next read, so a chain of merges feeds
  // one sorted multiset into a single compaction no matter the merge
  // order (see the header comment). Reading between merges forfeits that
  // exactness for the remaining chain.
  void Merge(const TDigest& other);

  // Interpolated value at quantile q in [0, 1]; 0.0 on an empty digest.
  double Quantile(double q) const;

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double compression() const { return compression_; }

  // Compacted centroid list, sorted by (mean, weight).
  const std::vector<TDigestCentroid>& Centroids() const;

  // {"format": "crowdtruth_tdigest", "version": 1, "compression": ...,
  //  "count": ..., "sum": ..., "min": ..., "max": ...,
  //  "centroids": [{"m": ..., "w": ...}, ...]}
  util::JsonValue ToJson() const;
  static util::Status FromJson(const util::JsonValue& doc, TDigest* out);

 private:
  // Folds buffer_ into centroids_ via the deterministic sorted compaction.
  void Compress() const;

  double compression_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  // Compacted clusters plus the uncompacted tail; Compress() is logically
  // const (it never changes the represented distribution), so accessors
  // can flush lazily.
  mutable std::vector<TDigestCentroid> centroids_;
  mutable std::vector<TDigestCentroid> buffer_;
};

}  // namespace crowdtruth::obs

#endif  // CROWDTRUTH_OBS_TDIGEST_H_
