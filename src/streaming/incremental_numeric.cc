#include "streaming/incremental_numeric.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/methods/baselines_numeric.h"
#include "streaming/snapshot_util.h"

namespace crowdtruth::streaming {

using util::JsonValue;
using util::Status;

double IncrementalNumericBaseline::WorkerQuality(
    data::WorkerId worker) const {
  const auto& votes = by_worker_[worker];
  if (votes.empty()) return 0.0;
  double sum_sq = 0.0;
  for (const data::NumericWorkerVote& vote : votes) {
    const double err = vote.value - values_[vote.task];
    sum_sq += err * err;
  }
  return -std::sqrt(sum_sq / votes.size());
}

void IncrementalNumericBaseline::SnapshotState(JsonValue* state) const {
  state->Set("values", internal::ToJson(values_));
}

Status IncrementalNumericBaseline::RestoreState(const JsonValue& state) {
  Status status = internal::FromJson(state.Find("values"), "values",
                                     num_tasks(), &values_);
  if (!status.ok()) return status;
  RebuildBuffers();
  return Status::Ok();
}

void StreamingMean::OnGrow() {
  values_.resize(num_tasks(), 0.0);
  sums_.resize(num_tasks(), 0.0);
}

void StreamingMean::OnObserve(const NumericAnswer& answer) {
  sums_[answer.task] += answer.value;
  values_[answer.task] = sums_[answer.task] / by_task_[answer.task].size();
}

std::unique_ptr<core::NumericMethod> StreamingMean::MakeBatchMethod() const {
  return std::make_unique<core::MeanBaseline>();
}

void StreamingMean::RebuildBuffers() {
  sums_.assign(num_tasks(), 0.0);
  for (data::TaskId t = 0; t < num_tasks(); ++t) {
    // Arrival order, matching the incremental accumulation exactly.
    for (const data::NumericTaskVote& vote : by_task_[t]) {
      sums_[t] += vote.value;
    }
  }
}

double StreamingMedian::MedianOf(const std::vector<double>& sorted) {
  const size_t mid = sorted.size() / 2;
  return sorted.size() % 2 == 1 ? sorted[mid]
                                : 0.5 * (sorted[mid - 1] + sorted[mid]);
}

void StreamingMedian::OnGrow() {
  values_.resize(num_tasks(), 0.0);
  sorted_.resize(num_tasks());
}

void StreamingMedian::OnObserve(const NumericAnswer& answer) {
  std::vector<double>& sorted = sorted_[answer.task];
  sorted.insert(std::upper_bound(sorted.begin(), sorted.end(), answer.value),
                answer.value);
  values_[answer.task] = MedianOf(sorted);
}

std::unique_ptr<core::NumericMethod> StreamingMedian::MakeBatchMethod()
    const {
  return std::make_unique<core::MedianBaseline>();
}

void StreamingMedian::RebuildBuffers() {
  sorted_.assign(num_tasks(), {});
  for (data::TaskId t = 0; t < num_tasks(); ++t) {
    for (const data::NumericTaskVote& vote : by_task_[t]) {
      sorted_[t].push_back(vote.value);
    }
    std::sort(sorted_[t].begin(), sorted_[t].end());
  }
}

}  // namespace crowdtruth::streaming
