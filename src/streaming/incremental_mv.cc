#include "streaming/incremental_mv.h"

#include <utility>

#include "core/methods/mv.h"
#include "streaming/snapshot_util.h"

namespace crowdtruth::streaming {

using util::JsonValue;
using util::Status;

double StreamingMajorityVote::WorkerQuality(data::WorkerId worker) const {
  const auto& votes = by_worker_[worker];
  if (votes.empty()) return 0.0;
  int agree = 0;
  for (const data::WorkerVote& vote : votes) {
    if (vote.label == labels_[vote.task]) ++agree;
  }
  return static_cast<double>(agree) / votes.size();
}

void StreamingMajorityVote::OnGrow() {
  counts_.resize(num_tasks(), std::vector<int>(num_choices_, 0));
  labels_.resize(num_tasks(), 0);
}

void StreamingMajorityVote::OnObserve(const CategoricalAnswer& answer) {
  std::vector<int>& counts = counts_[answer.task];
  ++counts[answer.label];
  if (counts[answer.label] > counts[labels_[answer.task]]) {
    labels_[answer.task] = answer.label;
  }
}

std::unique_ptr<core::CategoricalMethod>
StreamingMajorityVote::MakeBatchMethod() const {
  return std::make_unique<core::MajorityVoting>();
}

void StreamingMajorityVote::SnapshotState(JsonValue* state) const {
  state->Set("labels", internal::ToJson(labels_));
}

Status StreamingMajorityVote::RestoreState(const JsonValue& state) {
  Status status = internal::FromJson(state.Find("labels"), "labels",
                                     num_tasks(), &labels_);
  if (!status.ok()) return status;
  // Counts are raw data; rebuild them from the adjacency.
  counts_.assign(num_tasks(), std::vector<int>(num_choices_, 0));
  for (data::TaskId t = 0; t < num_tasks(); ++t) {
    for (const data::TaskVote& vote : by_task_[t]) {
      ++counts_[t][vote.label];
    }
  }
  return Status::Ok();
}

}  // namespace crowdtruth::streaming
