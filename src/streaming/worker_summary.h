// Serializable cross-shard worker state.
//
// In Algorithm 1 the only coupling between tasks is the per-worker quality
// estimate, so a task-partitioned deployment (src/shard/) needs to exchange
// exactly one thing between shards: each worker's answer count plus the
// method-specific sufficient statistics their quality is derived from.
// WorkerSummary is that exchange unit — keyed by *string* worker ids (the
// shards' dense indices differ), merged by element-wise addition in shard
// order, and serialized as a small JSON document so child-process shards
// can all-reduce through files.
//
// What each method contributes (see ExportWorkerStats in incremental.h):
//
//   ZC      — {agree_sum}: the M-step numerator; merged quality is
//             clamp(agree_sum / answer_count).
//   D&S     — the flattened l*l expected-count matrix; merged counts are
//             row-normalized into a confusion matrix exactly like the batch
//             M-step.
//   MV, Mean, Median — answer counts only. Their worker quality is a local
//             diagnostic that never feeds the truth estimates, so there is
//             no cross-shard coupling to exchange.
#ifndef CROWDTRUTH_STREAMING_WORKER_SUMMARY_H_
#define CROWDTRUTH_STREAMING_WORKER_SUMMARY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json_writer.h"
#include "util/status.h"

namespace crowdtruth::streaming {

struct WorkerSummaryEntry {
  int64_t answer_count = 0;
  // Method-specific sufficient statistics (may be empty for methods whose
  // quality does not feed the truth estimates).
  std::vector<double> stats;
};

struct WorkerSummary {
  // Compatibility header: summaries only merge into summaries produced by
  // the same method over the same label space.
  std::string method;
  std::string kind;  // "categorical" | "numeric"
  int num_choices = 0;  // 0 for numeric

  // Keyed by worker string id; std::map keeps iteration (and therefore the
  // serialized form) deterministic.
  std::map<std::string, WorkerSummaryEntry> workers;

  // Element-wise addition: counts add, stats vectors add per slot. New
  // workers are inserted. Fails with InvalidArgument on a method/kind/
  // num_choices mismatch or on stats-length disagreement for a worker.
  util::Status Merge(const WorkerSummary& other);

  util::JsonValue ToJson() const;
  static util::Status FromJson(const util::JsonValue& doc,
                               WorkerSummary* out);
};

}  // namespace crowdtruth::streaming

#endif  // CROWDTRUTH_STREAMING_WORKER_SUMMARY_H_
