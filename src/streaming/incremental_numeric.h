// Streaming numeric baselines.
//
//   * StreamingMean — per-task running sum; each answer updates its task's
//     mean in O(1). Accumulation happens in arrival order, the same order
//     the batch MeanBaseline sums the materialized dataset, so the
//     incremental means are bit-identical to batch even between resyncs.
//   * StreamingMedian — per-task sorted answer buffer; each answer is a
//     binary-search insert and a O(1) median read.
//
// Worker quality is the batch methods' negative RMS deviation from the
// current estimates, computed on demand.
#ifndef CROWDTRUTH_STREAMING_INCREMENTAL_NUMERIC_H_
#define CROWDTRUTH_STREAMING_INCREMENTAL_NUMERIC_H_

#include <memory>
#include <string>
#include <vector>

#include "streaming/incremental.h"

namespace crowdtruth::streaming {

// Shared scaffolding: the values_ cache, on-demand worker quality, and the
// values-only snapshot (per-task buffers are rebuilt from the adjacency).
class IncrementalNumericBaseline : public IncrementalNumericMethod {
 public:
  explicit IncrementalNumericBaseline(StreamingOptions options)
      : IncrementalNumericMethod(std::move(options)) {}

  double Estimate(data::TaskId task) const override {
    return values_[task];
  }
  double WorkerQuality(data::WorkerId worker) const override;

 protected:
  void AdoptBatch(const core::NumericResult& result) override {
    values_ = result.values;
  }
  void SnapshotState(util::JsonValue* state) const override;
  util::Status RestoreState(const util::JsonValue& state) override;
  // Rebuilds per-task accumulators from the adjacency after a Restore.
  virtual void RebuildBuffers() = 0;

  std::vector<double> values_;
};

class StreamingMean : public IncrementalNumericBaseline {
 public:
  explicit StreamingMean(StreamingOptions options)
      : IncrementalNumericBaseline(std::move(options)) {}

  std::string name() const override { return "Mean"; }

 protected:
  void OnGrow() override;
  void OnObserve(const NumericAnswer& answer) override;
  std::unique_ptr<core::NumericMethod> MakeBatchMethod() const override;
  void RebuildBuffers() override;

 private:
  std::vector<double> sums_;
};

class StreamingMedian : public IncrementalNumericBaseline {
 public:
  explicit StreamingMedian(StreamingOptions options)
      : IncrementalNumericBaseline(std::move(options)) {}

  std::string name() const override { return "Median"; }

 protected:
  void OnGrow() override;
  void OnObserve(const NumericAnswer& answer) override;
  std::unique_ptr<core::NumericMethod> MakeBatchMethod() const override;
  void RebuildBuffers() override;

 private:
  static double MedianOf(const std::vector<double>& sorted);

  // sorted_[t]: task t's answers in ascending order.
  std::vector<std::vector<double>> sorted_;
};

}  // namespace crowdtruth::streaming

#endif  // CROWDTRUTH_STREAMING_INCREMENTAL_NUMERIC_H_
