// Streaming Dawid & Skene. Maintains the confusion-matrix EM state as
// running sufficient statistics:
//
//   * counts_[w][j*l+k]  — expected co-occurrence counts: sum over w's
//                          votes of posterior[task][j] where the vote was k
//                          (the batch M-step's accumulator, kept
//                          incrementally via delta updates);
//   * class_sum_[j]      — sum of posterior[t][j] over answered tasks;
//   * matrices_[w]       — the normalized confusion matrix derived from
//                          counts_ exactly as the batch M-step does
//                          (smoothing + priors, then row-normalize);
//   * class_prior_, posterior_, labels_, quality_.
//
// Each Observe adds the new vote's contribution, then runs the same bounded
// dirty-task sweeps as StreamingZc: re-solve the answered task's posterior
// (batch E-step restricted to one task), delta-update its voters' counts
// and renormalize their matrices, and propagate to workers whose scalar
// quality moved by more than the threshold.
#ifndef CROWDTRUTH_STREAMING_INCREMENTAL_DS_H_
#define CROWDTRUTH_STREAMING_INCREMENTAL_DS_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "streaming/incremental.h"

namespace crowdtruth::streaming {

class StreamingDs : public IncrementalCategoricalMethod {
 public:
  StreamingDs(int num_choices, StreamingOptions options)
      : IncrementalCategoricalMethod(num_choices, std::move(options)) {}

  std::string name() const override { return "D&S"; }
  data::LabelId Estimate(data::TaskId task) const override {
    return labels_[task];
  }
  std::vector<double> TaskPosterior(data::TaskId task) const override {
    return posterior_[task];
  }
  double WorkerQuality(data::WorkerId worker) const override {
    return quality_[worker];
  }
  // The worker's current confusion matrix (flattened l x l).
  const std::vector<double>& WorkerConfusion(data::WorkerId worker) const {
    return matrices_[worker];
  }

  // Cross-shard sufficient statistic: the flattened l*l expected-count
  // matrix (the batch M-step's accumulator). Adopting shard-merged counts
  // renormalizes them into the serving confusion matrix exactly like the
  // batch M-step; the local counts_ stay untouched so local delta updates
  // remain consistent.
  std::vector<double> ExportWorkerStats(
      data::WorkerId worker) const override {
    return counts_[worker];
  }
  void AdoptWorkerStats(data::WorkerId worker, int64_t answer_count,
                        const std::vector<double>& stats) override;

 protected:
  void OnGrow() override;
  void OnObserve(const CategoricalAnswer& answer) override;
  void AdoptBatch(const core::CategoricalResult& result) override;
  std::unique_ptr<core::CategoricalMethod> MakeBatchMethod() const override;
  void SnapshotState(util::JsonValue* state) const override;
  util::Status RestoreState(const util::JsonValue& state) override;

 private:
  void RefreshClassPrior();
  // Rebuilds matrices_[worker] from counts_[worker] (the batch M-step's
  // normalization) and refreshes the cached scalar quality.
  void RenormalizeWorker(data::WorkerId worker);
  // Same normalization from an arbitrary count matrix (shard-merged
  // statistics).
  void RenormalizeWorkerFrom(data::WorkerId worker,
                             const std::vector<double>& counts);
  // Batch E-step restricted to `task`; delta-updates voters' counts_ and
  // class_sum_, collecting the voters into `touched`.
  void RefreshTask(data::TaskId task, std::set<data::WorkerId>* touched);

  std::vector<std::vector<double>> posterior_;
  std::vector<data::LabelId> labels_;
  std::vector<std::vector<double>> counts_;
  std::vector<std::vector<double>> matrices_;
  std::vector<double> class_sum_;
  std::vector<double> class_prior_;
  std::vector<double> quality_;
};

}  // namespace crowdtruth::streaming

#endif  // CROWDTRUTH_STREAMING_INCREMENTAL_DS_H_
