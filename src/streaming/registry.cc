#include "streaming/registry.h"

#include "streaming/incremental_ds.h"
#include "streaming/incremental_mv.h"
#include "streaming/incremental_numeric.h"
#include "streaming/incremental_zc.h"
#include "util/logging.h"

namespace crowdtruth::streaming {

std::vector<std::string> IncrementalCategoricalNames() {
  return {"MV", "ZC", "D&S"};
}

std::vector<std::string> IncrementalNumericNames() {
  return {"Mean", "Median"};
}

std::unique_ptr<IncrementalCategoricalMethod> MakeIncrementalCategorical(
    const std::string& name, int num_choices,
    const StreamingOptions& options) {
  CROWDTRUTH_CHECK_GE(num_choices, 2);
  if (name == "MV") {
    return std::make_unique<StreamingMajorityVote>(num_choices, options);
  }
  if (name == "ZC") {
    return std::make_unique<StreamingZc>(num_choices, options);
  }
  if (name == "D&S") {
    return std::make_unique<StreamingDs>(num_choices, options);
  }
  return nullptr;
}

std::unique_ptr<IncrementalNumericMethod> MakeIncrementalNumeric(
    const std::string& name, const StreamingOptions& options) {
  if (name == "Mean") return std::make_unique<StreamingMean>(options);
  if (name == "Median") return std::make_unique<StreamingMedian>(options);
  return nullptr;
}

}  // namespace crowdtruth::streaming
