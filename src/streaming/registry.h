// Factory for the incremental methods, mirroring core/registry.h. Only a
// subset of the 17 surveyed methods has a streaming counterpart; the rest
// are served by a StreamEngine with resync_interval=1 (full batch re-run
// per answer), which these factories do not construct.
#ifndef CROWDTRUTH_STREAMING_REGISTRY_H_
#define CROWDTRUTH_STREAMING_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "streaming/incremental.h"

namespace crowdtruth::streaming {

// Methods with an incremental categorical implementation, in the batch
// registry's order: {"MV", "ZC", "D&S"}.
std::vector<std::string> IncrementalCategoricalNames();
// Methods with an incremental numeric implementation: {"Mean", "Median"}.
std::vector<std::string> IncrementalNumericNames();

// Returns nullptr for names without an incremental implementation.
// `num_choices` must be >= 2.
std::unique_ptr<IncrementalCategoricalMethod> MakeIncrementalCategorical(
    const std::string& name, int num_choices,
    const StreamingOptions& options);
std::unique_ptr<IncrementalNumericMethod> MakeIncrementalNumeric(
    const std::string& name, const StreamingOptions& options);

}  // namespace crowdtruth::streaming

#endif  // CROWDTRUTH_STREAMING_REGISTRY_H_
