// Streaming ZenCrowd. Maintains the batch method's two parameter sets — the
// per-task posterior and the per-worker correctness probability — and after
// each answer re-solves only the answered task's neighborhood:
//
//   sweep 0: recompute the answered task's posterior (the batch E-step
//            restricted to that task), delta-update its voters' expected-
//            correct sums and re-clamp their qualities (the batch M-step
//            restricted to those workers);
//   sweep k: tasks of any worker whose quality moved by more than
//            options.propagation_threshold are re-solved the same way.
//
// options.local_sweeps bounds the propagation depth, so each Observe costs
// O(neighborhood) instead of O(answers x iterations).
#ifndef CROWDTRUTH_STREAMING_INCREMENTAL_ZC_H_
#define CROWDTRUTH_STREAMING_INCREMENTAL_ZC_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "streaming/incremental.h"

namespace crowdtruth::streaming {

class StreamingZc : public IncrementalCategoricalMethod {
 public:
  StreamingZc(int num_choices, StreamingOptions options)
      : IncrementalCategoricalMethod(num_choices, std::move(options)) {}

  std::string name() const override { return "ZC"; }
  data::LabelId Estimate(data::TaskId task) const override {
    return labels_[task];
  }
  std::vector<double> TaskPosterior(data::TaskId task) const override {
    return posterior_[task];
  }
  double WorkerQuality(data::WorkerId worker) const override {
    return quality_[worker];
  }

  // Cross-shard sufficient statistic: the M-step numerator agree_sum_[w].
  // Adopting shard-merged stats re-derives the quality with the batch
  // clamp, so a shard's serving quality reflects the worker's answers on
  // every shard, not just the local slice.
  std::vector<double> ExportWorkerStats(
      data::WorkerId worker) const override {
    return {agree_sum_[worker]};
  }
  void AdoptWorkerStats(data::WorkerId worker, int64_t answer_count,
                        const std::vector<double>& stats) override;

 protected:
  void OnGrow() override;
  void OnObserve(const CategoricalAnswer& answer) override;
  void AdoptBatch(const core::CategoricalResult& result) override;
  std::unique_ptr<core::CategoricalMethod> MakeBatchMethod() const override;
  void SnapshotState(util::JsonValue* state) const override;
  util::Status RestoreState(const util::JsonValue& state) override;

 private:
  // Batch E-step restricted to `task`; delta-updates the voters' agree
  // sums and collects them into `touched`.
  void RefreshTask(data::TaskId task, std::set<data::WorkerId>* touched);
  // Sets quality_[worker] and refreshes its cached log terms.
  void SetQuality(data::WorkerId worker, double quality);

  std::vector<std::vector<double>> posterior_;
  std::vector<data::LabelId> labels_;
  std::vector<double> quality_;
  // log(q_w) and log((1-q_w)/(l-1)), cached so RefreshTask pays no
  // transcendental per vote. Kept in lockstep with quality_ via
  // SetQuality.
  std::vector<double> log_right_;
  std::vector<double> log_wrong_;
  // agree_sum_[w]: sum of posterior_[task][label] over w's votes — the
  // numerator of the batch M-step, maintained incrementally.
  std::vector<double> agree_sum_;
};

}  // namespace crowdtruth::streaming

#endif  // CROWDTRUTH_STREAMING_INCREMENTAL_ZC_H_
