#include "streaming/incremental_zc.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/methods/zc.h"
#include "streaming/snapshot_util.h"
#include "util/special_functions.h"

namespace crowdtruth::streaming {

using util::JsonValue;
using util::Status;

namespace {

// Matches the batch method's clamp (zc.cc).
constexpr double kQualityFloor = 1e-3;
constexpr double kInitialQuality = 0.7;

data::LabelId ArgmaxLowestIndex(const std::vector<double>& belief) {
  data::LabelId best = 0;
  for (int z = 1; z < static_cast<int>(belief.size()); ++z) {
    if (belief[z] > belief[best]) best = z;
  }
  return best;
}

}  // namespace

void StreamingZc::OnGrow() {
  const int l = num_choices_;
  posterior_.resize(num_tasks(), std::vector<double>(l, 1.0 / l));
  labels_.resize(num_tasks(), 0);
  quality_.resize(num_workers(), kInitialQuality);
  log_right_.resize(num_workers(), std::log(kInitialQuality));
  log_wrong_.resize(num_workers(),
                    std::log((1.0 - kInitialQuality) / (l - 1)));
  agree_sum_.resize(num_workers(), 0.0);
}

void StreamingZc::SetQuality(data::WorkerId worker, double quality) {
  quality_[worker] = quality;
  log_right_[worker] = std::log(quality);
  log_wrong_[worker] = std::log((1.0 - quality) / (num_choices_ - 1));
}

void StreamingZc::RefreshTask(data::TaskId task,
                              std::set<data::WorkerId>* touched) {
  const int l = num_choices_;
  std::vector<double> log_belief(l, 0.0);
  const auto& votes = by_task_[task];
  for (const data::TaskVote& vote : votes) {
    const double log_right = log_right_[vote.worker];
    const double log_wrong = log_wrong_[vote.worker];
    for (int z = 0; z < l; ++z) {
      log_belief[z] += vote.label == z ? log_right : log_wrong;
    }
  }
  util::SoftmaxInPlace(log_belief);
  for (const data::TaskVote& vote : votes) {
    agree_sum_[vote.worker] +=
        log_belief[vote.label] - posterior_[task][vote.label];
    touched->insert(vote.worker);
  }
  posterior_[task] = log_belief;
  labels_[task] = ArgmaxLowestIndex(log_belief);
}

void StreamingZc::OnObserve(const CategoricalAnswer& answer) {
  // The new vote's contribution at the current belief.
  agree_sum_[answer.worker] += posterior_[answer.task][answer.label];

  std::set<data::TaskId> dirty = {answer.task};
  internal::DrainBacklog(options_.max_dirty_tasks, &backlog_, &dirty);
  for (int sweep = 0; sweep < options_.local_sweeps && !dirty.empty();
       ++sweep) {
    std::set<data::WorkerId> touched;
    for (data::TaskId task : dirty) RefreshTask(task, &touched);
    last_swept_ += static_cast<int>(dirty.size());
    std::set<data::TaskId> next;
    for (data::WorkerId worker : touched) {
      const double old_quality = quality_[worker];
      SetQuality(worker,
                 std::clamp(agree_sum_[worker] / by_worker_[worker].size(),
                            kQualityFloor, 1.0 - kQualityFloor));
      if (std::fabs(quality_[worker] - old_quality) >
          options_.propagation_threshold) {
        for (const data::WorkerVote& vote : by_worker_[worker]) {
          next.insert(vote.task);
        }
      }
    }
    dirty = std::move(next);
    internal::SpillDirtySet(options_.max_dirty_tasks, &dirty, &backlog_);
  }
}

void StreamingZc::AdoptWorkerStats(data::WorkerId worker,
                                   int64_t answer_count,
                                   const std::vector<double>& stats) {
  if (answer_count <= 0 || stats.size() != 1) return;
  // The batch M-step over the merged statistics: quality is the clamped
  // expected-correct fraction across every shard's answers.
  SetQuality(worker,
             std::clamp(stats[0] / static_cast<double>(answer_count),
                        kQualityFloor, 1.0 - kQualityFloor));
}

void StreamingZc::AdoptBatch(const core::CategoricalResult& result) {
  posterior_ = result.posterior;
  labels_ = result.labels;
  for (data::WorkerId w = 0; w < num_workers(); ++w) {
    SetQuality(w, result.worker_quality[w]);
  }
  for (data::WorkerId w = 0; w < num_workers(); ++w) {
    double sum = 0.0;
    for (const data::WorkerVote& vote : by_worker_[w]) {
      sum += posterior_[vote.task][vote.label];
    }
    agree_sum_[w] = sum;
  }
}

std::unique_ptr<core::CategoricalMethod> StreamingZc::MakeBatchMethod()
    const {
  return std::make_unique<core::Zc>();
}

void StreamingZc::SnapshotState(JsonValue* state) const {
  state->Set("posterior", internal::ToJson(posterior_));
  state->Set("labels", internal::ToJson(labels_));
  state->Set("quality", internal::ToJson(quality_));
  state->Set("agree_sum", internal::ToJson(agree_sum_));
}

Status StreamingZc::RestoreState(const JsonValue& state) {
  Status status = internal::FromJson(state.Find("posterior"), "posterior",
                                     num_tasks(), num_choices_, &posterior_);
  if (!status.ok()) return status;
  status = internal::FromJson(state.Find("labels"), "labels", num_tasks(),
                              &labels_);
  if (!status.ok()) return status;
  std::vector<double> quality;
  status = internal::FromJson(state.Find("quality"), "quality",
                              num_workers(), &quality);
  if (!status.ok()) return status;
  for (data::WorkerId w = 0; w < num_workers(); ++w) {
    SetQuality(w, quality[w]);
  }
  return internal::FromJson(state.Find("agree_sum"), "agree_sum",
                            num_workers(), &agree_sum_);
}

}  // namespace crowdtruth::streaming
