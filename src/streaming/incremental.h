// Incremental (streaming) truth inference.
//
// The batch framework (core/inference.h) recomputes everything from the full
// answer matrix. A deployed collection pipeline instead sees answers one at
// a time and wants fresh estimates after each one without paying a full
// re-run per answer. IncrementalCategoricalMethod / IncrementalNumericMethod
// are the streaming counterparts of CategoricalMethod / NumericMethod:
//
//   * Observe(answer)     — ingest one answer, growing the task/worker
//                           spaces on demand, and run a bounded localized
//                           re-estimation (dirty-task sweeps) around it;
//   * Estimate(task)      — current truth estimate for one task;
//   * WorkerQuality(w)    — current scalar quality for one worker;
//   * Resync()            — run the batch counterpart over every answer seen
//                           so far and adopt its state verbatim, so the
//                           streamed estimates provably coincide with the
//                           batch result at that point;
//   * Snapshot()/Restore()— serialize the full state (answers + derived
//                           estimates, verbatim doubles) to JSON, so a
//                           restored method continues bit-identically.
//
// Between resyncs the incremental estimates are an approximation: each
// Observe recomputes only the answered task's posterior and its local
// neighborhood (StreamingOptions::local_sweeps rounds of propagation to
// workers whose quality moved more than propagation_threshold). Resync
// resets the approximation error to zero by adopting the batch solution,
// which is why a replay with a final Resync matches the batch run exactly.
#ifndef CROWDTRUTH_STREAMING_INCREMENTAL_H_
#define CROWDTRUTH_STREAMING_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/inference.h"
#include "data/dataset.h"
#include "util/json_writer.h"
#include "util/status.h"

namespace crowdtruth::streaming {

struct StreamingOptions {
  // Rounds of dirty-task propagation per Observe. 0 disables localized
  // re-estimation entirely (estimates then only move at resyncs).
  int local_sweeps = 2;
  // A worker whose quality moves by more than this during a sweep marks all
  // their tasks dirty for the next sweep.
  double propagation_threshold = 1e-3;
  // Cap on how many dirty tasks one propagation sweep re-estimates — the
  // bound that keeps per-answer cost O(cap * redundancy) even when an
  // early-stream quality swing would otherwise mark a prolific worker's
  // whole task list dirty. Overflow is deferred to a backlog drained by
  // later Observe calls, not dropped, so global corrections (e.g. ZC
  // escaping an inverted label convention) still propagate — just
  // amortized. <= 0 removes the bound.
  int max_dirty_tasks = 32;
  // Options for the batch solver Resync() falls back to.
  core::InferenceOptions batch;
};

namespace internal {

// Tops a sweep's dirty set up to `cap` tasks from the deferred backlog
// (lowest task ids first). `cap` <= 0 drains the whole backlog.
inline void DrainBacklog(int cap, std::set<data::TaskId>* backlog,
                         std::set<data::TaskId>* dirty) {
  while (!backlog->empty() &&
         (cap <= 0 || static_cast<int>(dirty->size()) < cap)) {
    dirty->insert(*backlog->begin());
    backlog->erase(backlog->begin());
  }
}

// Applies StreamingOptions::max_dirty_tasks to a sweep's dirty set: the
// `cap` lowest-indexed tasks stay, the rest move to the backlog for later
// Observe calls to drain.
inline void SpillDirtySet(int cap, std::set<data::TaskId>* dirty,
                          std::set<data::TaskId>* backlog) {
  if (cap <= 0) return;
  while (static_cast<int>(dirty->size()) > cap) {
    auto last = std::prev(dirty->end());
    backlog->insert(*last);
    dirty->erase(last);
  }
}

}  // namespace internal

struct CategoricalAnswer {
  data::TaskId task = 0;
  data::WorkerId worker = 0;
  data::LabelId label = 0;
};

struct NumericAnswer {
  data::TaskId task = 0;
  data::WorkerId worker = 0;
  double value = 0.0;
};

// Base of the categorical incremental methods (MV, ZC, D&S). Owns the
// growing answer store (arrival order plus both adjacency views, mirroring
// data::CategoricalDataset); subclasses own the derived estimates.
class IncrementalCategoricalMethod {
 public:
  using Answer = CategoricalAnswer;
  using BatchResult = core::CategoricalResult;
  // Domain tag recorded in snapshots and worker summaries.
  static constexpr const char* kKind = "categorical";

  IncrementalCategoricalMethod(int num_choices, StreamingOptions options);
  virtual ~IncrementalCategoricalMethod() = default;

  // Batch-registry name of the method this one streams ("MV", "ZC", "D&S").
  virtual std::string name() const = 0;

  // Ingests one answer. Task/worker ids are dense indices; ids beyond the
  // current spaces grow them (the engine's interner produces contiguous
  // ids). Rejects out-of-range labels and duplicate (task, worker) pairs
  // with InvalidArgument, leaving the state untouched.
  util::Status Observe(const CategoricalAnswer& answer);

  int num_tasks() const { return static_cast<int>(by_task_.size()); }
  int num_workers() const { return static_cast<int>(by_worker_.size()); }
  int num_choices() const { return num_choices_; }
  int64_t num_answers() const {
    return static_cast<int64_t>(answers_.size());
  }
  const StreamingOptions& options() const { return options_; }

  // Runtime retune of the dirty-task spill bound (<= 0 removes it). Only
  // future sweeps are affected: the current backlog keeps draining under
  // the new cap, and the next Resync adopts the batch solution regardless
  // of sweep history, so retuning mid-stream never changes what a
  // resynced engine converges to.
  void set_max_dirty_tasks(int cap) { options_.max_dirty_tasks = cap; }

  // Dirty tasks deferred by max_dirty_tasks and still awaiting a sweep.
  int64_t backlog_size() const {
    return static_cast<int64_t>(backlog_.size());
  }
  // Tasks re-estimated by the most recent Observe's propagation sweeps
  // (0 for methods without localized re-estimation, e.g. MV).
  int last_observe_swept() const { return last_swept_; }

  // Current estimates. Estimate/TaskPosterior/WorkerQuality require a valid
  // index; Estimates()/WorkerQualities() gather all of them.
  virtual data::LabelId Estimate(data::TaskId task) const = 0;
  // Per-task belief over choices; empty for hard-assignment methods (MV).
  virtual std::vector<double> TaskPosterior(data::TaskId /*task*/) const {
    return {};
  }
  virtual double WorkerQuality(data::WorkerId worker) const = 0;
  std::vector<data::LabelId> Estimates() const;
  std::vector<double> WorkerQualities() const;

  // Runs the batch counterpart over all answers seen so far (on the exact
  // dataset MaterializeDataset() returns) and adopts labels, posterior and
  // worker qualities verbatim. Returns the batch result. No-op returning an
  // empty result before the first answer.
  core::CategoricalResult Resync();

  // Adopts an externally computed batch solution over the current answers
  // (the shard coordinator's global resync, restricted to this shard's
  // slice). Vectors must be sized to the current task/worker spaces; like
  // Resync, the adopted solution subsumes any deferred backlog.
  void AdoptResult(const core::CategoricalResult& result) {
    AdoptBatch(result);
    backlog_.clear();
  }

  // --- Cross-shard worker state (streaming/worker_summary.h) ---
  //
  // Worker quality is the only cross-task coupling in Algorithm 1, so it is
  // the only state task-partitioned shards exchange. ExportWorkerStats
  // returns the additive sufficient statistics one worker's quality is
  // derived from (empty for methods whose quality never feeds the truth);
  // AdoptWorkerStats re-derives the quality from shard-merged statistics.
  int64_t WorkerAnswerCount(data::WorkerId worker) const {
    return static_cast<int64_t>(by_worker_[worker].size());
  }
  virtual std::vector<double> ExportWorkerStats(
      data::WorkerId /*worker*/) const {
    return {};
  }
  virtual void AdoptWorkerStats(data::WorkerId /*worker*/,
                                int64_t /*answer_count*/,
                                const std::vector<double>& /*stats*/) {}

  // The answers seen so far as a batch dataset, added in arrival order —
  // bit-identical to a CategoricalDatasetBuilder fed the same stream.
  data::CategoricalDataset MaterializeDataset() const;

  // Full-fidelity JSON state. Restore() accepts only a snapshot produced by
  // the same method with the same num_choices and resumes bit-identically.
  util::JsonValue Snapshot() const;
  util::Status Restore(const util::JsonValue& snapshot);

 protected:
  // Called after the task/worker spaces grew; subclasses resize their
  // per-task / per-worker state (new slots get initial values).
  virtual void OnGrow() = 0;
  // Called after the answer was appended to the adjacency views; subclasses
  // run their localized update.
  virtual void OnObserve(const CategoricalAnswer& answer) = 0;
  // Adopts a batch result verbatim (sizes match the current spaces).
  virtual void AdoptBatch(const core::CategoricalResult& result) = 0;
  virtual std::unique_ptr<core::CategoricalMethod> MakeBatchMethod()
      const = 0;
  // Serializes / restores the subclass state. RestoreState runs after the
  // answer store and adjacency have been rebuilt and OnGrow() has sized the
  // subclass arrays.
  virtual void SnapshotState(util::JsonValue* state) const = 0;
  virtual util::Status RestoreState(const util::JsonValue& state) = 0;

  StreamingOptions options_;
  int num_choices_ = 0;
  // Arrival order; the replay log this method has consumed.
  std::vector<CategoricalAnswer> answers_;
  std::vector<std::vector<data::TaskVote>> by_task_;
  std::vector<std::vector<data::WorkerVote>> by_worker_;
  // Dirty tasks deferred by max_dirty_tasks; drained by later Observes,
  // cleared by Resync (the batch solution subsumes the pending work).
  std::set<data::TaskId> backlog_;
  // Tasks refreshed by the current Observe; reset by the base before
  // OnObserve, accumulated by subclass sweep loops.
  int last_swept_ = 0;
};

// Base of the numeric incremental methods (Mean, Median).
class IncrementalNumericMethod {
 public:
  using Answer = NumericAnswer;
  using BatchResult = core::NumericResult;
  static constexpr const char* kKind = "numeric";

  explicit IncrementalNumericMethod(StreamingOptions options);
  virtual ~IncrementalNumericMethod() = default;

  virtual std::string name() const = 0;

  util::Status Observe(const NumericAnswer& answer);

  int num_tasks() const { return static_cast<int>(by_task_.size()); }
  int num_workers() const { return static_cast<int>(by_worker_.size()); }
  int64_t num_answers() const {
    return static_cast<int64_t>(answers_.size());
  }
  const StreamingOptions& options() const { return options_; }

  // Accepted for engine symmetry; the numeric methods keep exact running
  // state and never defer work, so the cap has nothing to bound.
  void set_max_dirty_tasks(int cap) { options_.max_dirty_tasks = cap; }

  // The numeric methods keep exact running state per task, so there is no
  // deferred work; the accessors exist for engine-metrics symmetry.
  int64_t backlog_size() const { return 0; }
  int last_observe_swept() const { return 0; }

  virtual double Estimate(data::TaskId task) const = 0;
  virtual double WorkerQuality(data::WorkerId worker) const = 0;
  std::vector<double> Estimates() const;
  std::vector<double> WorkerQualities() const;

  core::NumericResult Resync();

  // See IncrementalCategoricalMethod::AdoptResult.
  void AdoptResult(const core::NumericResult& result) {
    AdoptBatch(result);
  }

  // See IncrementalCategoricalMethod — the numeric methods' worker quality
  // is a local diagnostic (negative RMS vs the estimates) that never feeds
  // the truth, so only the answer counts travel between shards.
  int64_t WorkerAnswerCount(data::WorkerId worker) const {
    return static_cast<int64_t>(by_worker_[worker].size());
  }
  virtual std::vector<double> ExportWorkerStats(
      data::WorkerId /*worker*/) const {
    return {};
  }
  virtual void AdoptWorkerStats(data::WorkerId /*worker*/,
                                int64_t /*answer_count*/,
                                const std::vector<double>& /*stats*/) {}

  data::NumericDataset MaterializeDataset() const;
  util::JsonValue Snapshot() const;
  util::Status Restore(const util::JsonValue& snapshot);

 protected:
  virtual void OnGrow() = 0;
  virtual void OnObserve(const NumericAnswer& answer) = 0;
  virtual void AdoptBatch(const core::NumericResult& result) = 0;
  virtual std::unique_ptr<core::NumericMethod> MakeBatchMethod() const = 0;
  virtual void SnapshotState(util::JsonValue* state) const = 0;
  virtual util::Status RestoreState(const util::JsonValue& state) = 0;

  StreamingOptions options_;
  std::vector<NumericAnswer> answers_;
  std::vector<std::vector<data::NumericTaskVote>> by_task_;
  std::vector<std::vector<data::NumericWorkerVote>> by_worker_;
};

}  // namespace crowdtruth::streaming

#endif  // CROWDTRUTH_STREAMING_INCREMENTAL_H_
