#include "streaming/incremental.h"

#include <cmath>
#include <string>
#include <utility>

#include "streaming/snapshot_util.h"

namespace crowdtruth::streaming {

using util::JsonValue;
using util::Status;

namespace {

constexpr char kFormat[] = "crowdtruth_method_snapshot";
constexpr int kVersion = 1;

Status CheckVersion(const JsonValue& snapshot) {
  Status status =
      internal::ExpectString(snapshot.Find("format"), "format", kFormat);
  if (!status.ok()) return status;
  int version = 0;
  status = internal::ReadInt(snapshot.Find("version"), "version", &version);
  if (!status.ok()) return status;
  if (version != kVersion) {
    // A typed error so callers (checkpoint restore, the server) can tell
    // "future/unknown format" apart from plain malformed input.
    return Status::ValidationError("unsupported method snapshot version " +
                                   std::to_string(version));
  }
  return Status::Ok();
}

// Parses one `[task, worker, answer]` snapshot row; `answer` stays a double
// for the caller to narrow.
Status ParseAnswerRow(const JsonValue& row, double* task, double* worker,
                      double* answer) {
  if (row.kind() != JsonValue::Kind::kArray || row.items().size() != 3) {
    return Status::InvalidArgument(
        "snapshot answers must be [task, worker, answer] triples");
  }
  double* fields[3] = {task, worker, answer};
  for (int i = 0; i < 3; ++i) {
    const JsonValue& item = row.items()[i];
    if (item.kind() != JsonValue::Kind::kNumber) {
      return Status::InvalidArgument("snapshot answer has a non-numeric "
                                     "field");
    }
    *fields[i] = item.number();
  }
  return Status::Ok();
}

Status CheckDenseIndex(double value, int limit, const char* what) {
  const int index = static_cast<int>(value);
  if (value != index || index < 0 || index >= limit) {
    return Status::InvalidArgument(std::string("snapshot answer has an out-"
                                               "of-range ") +
                                   what + " index");
  }
  return Status::Ok();
}

}  // namespace

IncrementalCategoricalMethod::IncrementalCategoricalMethod(
    int num_choices, StreamingOptions options)
    : options_(std::move(options)), num_choices_(num_choices) {}

Status IncrementalCategoricalMethod::Observe(
    const CategoricalAnswer& answer) {
  if (answer.task < 0 || answer.worker < 0) {
    return Status::InvalidArgument("negative task or worker id");
  }
  if (answer.label < 0 || answer.label >= num_choices_) {
    return Status::InvalidArgument(
        "label " + std::to_string(answer.label) +
        " out of range for num_choices=" + std::to_string(num_choices_));
  }
  if (answer.task < num_tasks()) {
    for (const data::TaskVote& vote : by_task_[answer.task]) {
      if (vote.worker == answer.worker) {
        return Status::InvalidArgument(
            "duplicate answer: worker " + std::to_string(answer.worker) +
            " already answered task " + std::to_string(answer.task));
      }
    }
  }
  bool grew = false;
  if (answer.task >= num_tasks()) {
    by_task_.resize(answer.task + 1);
    grew = true;
  }
  if (answer.worker >= num_workers()) {
    by_worker_.resize(answer.worker + 1);
    grew = true;
  }
  answers_.push_back(answer);
  by_task_[answer.task].push_back({answer.worker, answer.label});
  by_worker_[answer.worker].push_back({answer.task, answer.label});
  if (grew) OnGrow();
  last_swept_ = 0;
  OnObserve(answer);
  return Status::Ok();
}

std::vector<data::LabelId> IncrementalCategoricalMethod::Estimates() const {
  std::vector<data::LabelId> labels(num_tasks());
  for (data::TaskId t = 0; t < num_tasks(); ++t) labels[t] = Estimate(t);
  return labels;
}

std::vector<double> IncrementalCategoricalMethod::WorkerQualities() const {
  std::vector<double> quality(num_workers());
  for (data::WorkerId w = 0; w < num_workers(); ++w) {
    quality[w] = WorkerQuality(w);
  }
  return quality;
}

core::CategoricalResult IncrementalCategoricalMethod::Resync() {
  core::CategoricalResult result;
  if (answers_.empty()) return result;
  const data::CategoricalDataset dataset = MaterializeDataset();
  result = MakeBatchMethod()->Infer(dataset, options_.batch);
  AdoptBatch(result);
  // The batch solution subsumes any deferred localized re-estimation.
  backlog_.clear();
  return result;
}

data::CategoricalDataset IncrementalCategoricalMethod::MaterializeDataset()
    const {
  data::CategoricalDatasetBuilder builder(num_tasks(), num_workers(),
                                          num_choices_);
  builder.set_name(name() + "_stream");
  for (const CategoricalAnswer& answer : answers_) {
    builder.AddAnswer(answer.task, answer.worker, answer.label);
  }
  return std::move(builder).Build();
}

JsonValue IncrementalCategoricalMethod::Snapshot() const {
  JsonValue root = JsonValue::Object();
  root.Set("format", kFormat);
  root.Set("version", kVersion);
  root.Set("kind", "categorical");
  root.Set("method", name());
  root.Set("num_choices", num_choices_);
  root.Set("num_tasks", num_tasks());
  root.Set("num_workers", num_workers());
  JsonValue answers = JsonValue::Array();
  for (const CategoricalAnswer& answer : answers_) {
    JsonValue row = JsonValue::Array();
    row.Append(answer.task);
    row.Append(answer.worker);
    row.Append(answer.label);
    answers.Append(std::move(row));
  }
  root.Set("answers", std::move(answers));
  root.Set("backlog", internal::ToJson(std::vector<int>(backlog_.begin(),
                                                        backlog_.end())));
  JsonValue state = JsonValue::Object();
  SnapshotState(&state);
  root.Set("state", std::move(state));
  return root;
}

Status IncrementalCategoricalMethod::Restore(const JsonValue& snapshot) {
  Status status = CheckVersion(snapshot);
  if (!status.ok()) return status;
  status = internal::ExpectString(snapshot.Find("kind"), "kind",
                                  "categorical");
  if (!status.ok()) return status;
  status = internal::ExpectString(snapshot.Find("method"), "method", name());
  if (!status.ok()) return status;
  int num_choices = 0;
  status = internal::ReadInt(snapshot.Find("num_choices"), "num_choices",
                             &num_choices);
  if (!status.ok()) return status;
  if (num_choices != num_choices_) {
    return Status::InvalidArgument(
        "snapshot num_choices=" + std::to_string(num_choices) +
        " does not match this method's " + std::to_string(num_choices_));
  }
  int num_tasks = 0;
  int num_workers = 0;
  status = internal::ReadInt(snapshot.Find("num_tasks"), "num_tasks",
                             &num_tasks);
  if (!status.ok()) return status;
  status = internal::ReadInt(snapshot.Find("num_workers"), "num_workers",
                             &num_workers);
  if (!status.ok()) return status;
  const JsonValue* answers = snapshot.Find("answers");
  if (answers == nullptr || answers->kind() != JsonValue::Kind::kArray) {
    return Status::InvalidArgument(
        "snapshot field \"answers\" missing or not an array");
  }

  answers_.clear();
  by_task_.assign(num_tasks, {});
  by_worker_.assign(num_workers, {});
  for (const JsonValue& row : answers->items()) {
    double task = 0.0;
    double worker = 0.0;
    double answer = 0.0;
    status = ParseAnswerRow(row, &task, &worker, &answer);
    if (!status.ok()) return status;
    status = CheckDenseIndex(task, num_tasks, "task");
    if (!status.ok()) return status;
    status = CheckDenseIndex(worker, num_workers, "worker");
    if (!status.ok()) return status;
    status = CheckDenseIndex(answer, num_choices_, "label");
    if (!status.ok()) return status;
    const CategoricalAnswer parsed{static_cast<data::TaskId>(task),
                                   static_cast<data::WorkerId>(worker),
                                   static_cast<data::LabelId>(answer)};
    answers_.push_back(parsed);
    by_task_[parsed.task].push_back({parsed.worker, parsed.label});
    by_worker_[parsed.worker].push_back({parsed.task, parsed.label});
  }
  OnGrow();
  std::vector<int> backlog;
  status = internal::FromJson(snapshot.Find("backlog"), "backlog",
                              /*expected_size=*/-1, &backlog);
  if (!status.ok()) return status;
  backlog_.clear();
  for (int task : backlog) {
    status = CheckDenseIndex(task, num_tasks, "backlog task");
    if (!status.ok()) return status;
    backlog_.insert(task);
  }
  const JsonValue* state = snapshot.Find("state");
  if (state == nullptr || state->kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument(
        "snapshot field \"state\" missing or not an object");
  }
  return RestoreState(*state);
}

IncrementalNumericMethod::IncrementalNumericMethod(StreamingOptions options)
    : options_(std::move(options)) {}

Status IncrementalNumericMethod::Observe(const NumericAnswer& answer) {
  if (answer.task < 0 || answer.worker < 0) {
    return Status::InvalidArgument("negative task or worker id");
  }
  if (!std::isfinite(answer.value)) {
    return Status::InvalidArgument(
        "non-finite answer value for task " + std::to_string(answer.task));
  }
  if (answer.task < num_tasks()) {
    for (const data::NumericTaskVote& vote : by_task_[answer.task]) {
      if (vote.worker == answer.worker) {
        return Status::InvalidArgument(
            "duplicate answer: worker " + std::to_string(answer.worker) +
            " already answered task " + std::to_string(answer.task));
      }
    }
  }
  bool grew = false;
  if (answer.task >= num_tasks()) {
    by_task_.resize(answer.task + 1);
    grew = true;
  }
  if (answer.worker >= num_workers()) {
    by_worker_.resize(answer.worker + 1);
    grew = true;
  }
  answers_.push_back(answer);
  by_task_[answer.task].push_back({answer.worker, answer.value});
  by_worker_[answer.worker].push_back({answer.task, answer.value});
  if (grew) OnGrow();
  OnObserve(answer);
  return Status::Ok();
}

std::vector<double> IncrementalNumericMethod::Estimates() const {
  std::vector<double> values(num_tasks());
  for (data::TaskId t = 0; t < num_tasks(); ++t) values[t] = Estimate(t);
  return values;
}

std::vector<double> IncrementalNumericMethod::WorkerQualities() const {
  std::vector<double> quality(num_workers());
  for (data::WorkerId w = 0; w < num_workers(); ++w) {
    quality[w] = WorkerQuality(w);
  }
  return quality;
}

core::NumericResult IncrementalNumericMethod::Resync() {
  core::NumericResult result;
  if (answers_.empty()) return result;
  const data::NumericDataset dataset = MaterializeDataset();
  result = MakeBatchMethod()->Infer(dataset, options_.batch);
  AdoptBatch(result);
  return result;
}

data::NumericDataset IncrementalNumericMethod::MaterializeDataset() const {
  data::NumericDatasetBuilder builder(num_tasks(), num_workers());
  builder.set_name(name() + "_stream");
  for (const NumericAnswer& answer : answers_) {
    builder.AddAnswer(answer.task, answer.worker, answer.value);
  }
  return std::move(builder).Build();
}

JsonValue IncrementalNumericMethod::Snapshot() const {
  JsonValue root = JsonValue::Object();
  root.Set("format", kFormat);
  root.Set("version", kVersion);
  root.Set("kind", "numeric");
  root.Set("method", name());
  root.Set("num_tasks", num_tasks());
  root.Set("num_workers", num_workers());
  JsonValue answers = JsonValue::Array();
  for (const NumericAnswer& answer : answers_) {
    JsonValue row = JsonValue::Array();
    row.Append(answer.task);
    row.Append(answer.worker);
    row.Append(answer.value);
    answers.Append(std::move(row));
  }
  root.Set("answers", std::move(answers));
  JsonValue state = JsonValue::Object();
  SnapshotState(&state);
  root.Set("state", std::move(state));
  return root;
}

Status IncrementalNumericMethod::Restore(const JsonValue& snapshot) {
  Status status = CheckVersion(snapshot);
  if (!status.ok()) return status;
  status = internal::ExpectString(snapshot.Find("kind"), "kind", "numeric");
  if (!status.ok()) return status;
  status = internal::ExpectString(snapshot.Find("method"), "method", name());
  if (!status.ok()) return status;
  int num_tasks = 0;
  int num_workers = 0;
  status = internal::ReadInt(snapshot.Find("num_tasks"), "num_tasks",
                             &num_tasks);
  if (!status.ok()) return status;
  status = internal::ReadInt(snapshot.Find("num_workers"), "num_workers",
                             &num_workers);
  if (!status.ok()) return status;
  const JsonValue* answers = snapshot.Find("answers");
  if (answers == nullptr || answers->kind() != JsonValue::Kind::kArray) {
    return Status::InvalidArgument(
        "snapshot field \"answers\" missing or not an array");
  }

  answers_.clear();
  by_task_.assign(num_tasks, {});
  by_worker_.assign(num_workers, {});
  for (const JsonValue& row : answers->items()) {
    double task = 0.0;
    double worker = 0.0;
    double value = 0.0;
    status = ParseAnswerRow(row, &task, &worker, &value);
    if (!status.ok()) return status;
    status = CheckDenseIndex(task, num_tasks, "task");
    if (!status.ok()) return status;
    status = CheckDenseIndex(worker, num_workers, "worker");
    if (!status.ok()) return status;
    const NumericAnswer parsed{static_cast<data::TaskId>(task),
                               static_cast<data::WorkerId>(worker), value};
    answers_.push_back(parsed);
    by_task_[parsed.task].push_back({parsed.worker, parsed.value});
    by_worker_[parsed.worker].push_back({parsed.task, parsed.value});
  }
  OnGrow();
  const JsonValue* state = snapshot.Find("state");
  if (state == nullptr || state->kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument(
        "snapshot field \"state\" missing or not an object");
  }
  return RestoreState(*state);
}

}  // namespace crowdtruth::streaming
