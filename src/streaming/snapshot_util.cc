#include "streaming/snapshot_util.h"

#include <cmath>

namespace crowdtruth::streaming::internal {

using util::JsonValue;
using util::Status;

JsonValue ToJson(const std::vector<double>& values) {
  JsonValue array = JsonValue::Array();
  for (double v : values) array.Append(v);
  return array;
}

JsonValue ToJson(const std::vector<int>& values) {
  JsonValue array = JsonValue::Array();
  for (int v : values) array.Append(v);
  return array;
}

JsonValue ToJson(const std::vector<std::vector<double>>& rows) {
  JsonValue array = JsonValue::Array();
  for (const auto& row : rows) array.Append(ToJson(row));
  return array;
}

namespace {

Status ExpectArray(const JsonValue* value, const std::string& field,
                   int expected_size) {
  if (value == nullptr || value->kind() != JsonValue::Kind::kArray) {
    return Status::InvalidArgument("snapshot field \"" + field +
                                   "\" missing or not an array");
  }
  if (expected_size >= 0 &&
      static_cast<int>(value->items().size()) != expected_size) {
    return Status::InvalidArgument(
        "snapshot field \"" + field + "\" has " +
        std::to_string(value->items().size()) + " entries, expected " +
        std::to_string(expected_size));
  }
  return Status::Ok();
}

Status NumberAt(const JsonValue& item, const std::string& field,
                double* out) {
  if (item.kind() != JsonValue::Kind::kNumber) {
    return Status::InvalidArgument("snapshot field \"" + field +
                                   "\" has a non-numeric entry");
  }
  *out = item.number();
  return Status::Ok();
}

}  // namespace

Status FromJson(const JsonValue* value, const std::string& field,
                int expected_size, std::vector<double>* out) {
  Status status = ExpectArray(value, field, expected_size);
  if (!status.ok()) return status;
  out->clear();
  out->reserve(value->items().size());
  for (const JsonValue& item : value->items()) {
    double number = 0.0;
    status = NumberAt(item, field, &number);
    if (!status.ok()) return status;
    out->push_back(number);
  }
  return Status::Ok();
}

Status FromJson(const JsonValue* value, const std::string& field,
                int expected_size, std::vector<int>* out) {
  Status status = ExpectArray(value, field, expected_size);
  if (!status.ok()) return status;
  out->clear();
  out->reserve(value->items().size());
  for (const JsonValue& item : value->items()) {
    double number = 0.0;
    status = NumberAt(item, field, &number);
    if (!status.ok()) return status;
    if (number != std::floor(number)) {
      return Status::InvalidArgument("snapshot field \"" + field +
                                     "\" has a non-integral entry");
    }
    out->push_back(static_cast<int>(number));
  }
  return Status::Ok();
}

Status FromJson(const JsonValue* value, const std::string& field,
                int expected_size, int row_size,
                std::vector<std::vector<double>>* out) {
  Status status = ExpectArray(value, field, expected_size);
  if (!status.ok()) return status;
  out->clear();
  out->reserve(value->items().size());
  for (const JsonValue& item : value->items()) {
    std::vector<double> row;
    status = FromJson(&item, field, row_size, &row);
    if (!status.ok()) return status;
    out->push_back(std::move(row));
  }
  return Status::Ok();
}

Status ExpectString(const JsonValue* value, const std::string& field,
                    const std::string& expected) {
  if (value == nullptr || value->kind() != JsonValue::Kind::kString) {
    return Status::InvalidArgument("snapshot field \"" + field +
                                   "\" missing or not a string");
  }
  if (value->string() != expected) {
    return Status::InvalidArgument("snapshot field \"" + field + "\" is \"" +
                                   value->string() + "\", expected \"" +
                                   expected + "\"");
  }
  return Status::Ok();
}

Status ReadInt(const JsonValue* value, const std::string& field, int* out) {
  if (value == nullptr || value->kind() != JsonValue::Kind::kNumber) {
    return Status::InvalidArgument("snapshot field \"" + field +
                                   "\" missing or not a number");
  }
  const double number = value->number();
  if (number != std::floor(number) || number < 0) {
    return Status::InvalidArgument("snapshot field \"" + field +
                                   "\" is not a non-negative integer");
  }
  *out = static_cast<int>(number);
  return Status::Ok();
}

}  // namespace crowdtruth::streaming::internal
