#include "streaming/worker_summary.h"

#include <utility>

namespace crowdtruth::streaming {

using util::JsonValue;
using util::Status;

namespace {

constexpr char kFormat[] = "crowdtruth_worker_summary";
constexpr int kVersion = 1;

}  // namespace

Status WorkerSummary::Merge(const WorkerSummary& other) {
  if (other.method != method || other.kind != kind ||
      other.num_choices != num_choices) {
    return Status::InvalidArgument(
        "cannot merge worker summary for " + other.kind + "/" +
        other.method + "/" + std::to_string(other.num_choices) +
        " into one for " + kind + "/" + method + "/" +
        std::to_string(num_choices));
  }
  for (const auto& [id, entry] : other.workers) {
    auto [it, inserted] = workers.emplace(id, entry);
    if (inserted) continue;
    WorkerSummaryEntry& mine = it->second;
    if (mine.stats.size() != entry.stats.size()) {
      return Status::InvalidArgument(
          "worker \"" + id + "\": stats length mismatch (" +
          std::to_string(mine.stats.size()) + " vs " +
          std::to_string(entry.stats.size()) + ")");
    }
    mine.answer_count += entry.answer_count;
    for (size_t i = 0; i < entry.stats.size(); ++i) {
      mine.stats[i] += entry.stats[i];
    }
  }
  return Status::Ok();
}

JsonValue WorkerSummary::ToJson() const {
  JsonValue root = JsonValue::Object();
  root.Set("format", kFormat);
  root.Set("version", kVersion);
  root.Set("method", method);
  root.Set("kind", kind);
  root.Set("num_choices", num_choices);
  JsonValue table = JsonValue::Object();
  for (const auto& [id, entry] : workers) {
    JsonValue row = JsonValue::Object();
    row.Set("count", entry.answer_count);
    JsonValue stats = JsonValue::Array();
    for (double s : entry.stats) stats.Append(s);
    row.Set("stats", std::move(stats));
    table.Set(id, std::move(row));
  }
  root.Set("workers", std::move(table));
  return root;
}

Status WorkerSummary::FromJson(const JsonValue& doc, WorkerSummary* out) {
  const JsonValue* format = doc.Find("format");
  if (format == nullptr || format->kind() != JsonValue::Kind::kString ||
      format->string() != kFormat) {
    return Status::InvalidArgument(
        "not a crowdtruth_worker_summary document");
  }
  const JsonValue* version = doc.Find("version");
  if (version == nullptr || version->kind() != JsonValue::Kind::kNumber) {
    return Status::InvalidArgument("worker summary version missing");
  }
  if (static_cast<int>(version->number()) != kVersion) {
    return Status::ValidationError(
        "unsupported worker summary version " +
        std::to_string(static_cast<int>(version->number())));
  }
  const JsonValue* method = doc.Find("method");
  const JsonValue* kind = doc.Find("kind");
  const JsonValue* choices = doc.Find("num_choices");
  if (method == nullptr || method->kind() != JsonValue::Kind::kString ||
      kind == nullptr || kind->kind() != JsonValue::Kind::kString ||
      choices == nullptr || choices->kind() != JsonValue::Kind::kNumber) {
    return Status::InvalidArgument("worker summary header malformed");
  }
  const JsonValue* table = doc.Find("workers");
  if (table == nullptr || table->kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument(
        "worker summary field \"workers\" missing or not an object");
  }
  WorkerSummary parsed;
  parsed.method = method->string();
  parsed.kind = kind->string();
  parsed.num_choices = static_cast<int>(choices->number());
  for (const auto& [id, row] : table->fields()) {
    if (row.kind() != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("worker \"" + id +
                                     "\": entry is not an object");
    }
    const JsonValue* count = row.Find("count");
    const JsonValue* stats = row.Find("stats");
    if (count == nullptr || count->kind() != JsonValue::Kind::kNumber ||
        stats == nullptr || stats->kind() != JsonValue::Kind::kArray) {
      return Status::InvalidArgument("worker \"" + id +
                                     "\": malformed entry");
    }
    WorkerSummaryEntry entry;
    entry.answer_count = static_cast<int64_t>(count->number());
    if (entry.answer_count < 0) {
      return Status::InvalidArgument("worker \"" + id +
                                     "\": negative answer count");
    }
    entry.stats.reserve(stats->items().size());
    for (const JsonValue& s : stats->items()) {
      if (s.kind() != JsonValue::Kind::kNumber) {
        return Status::InvalidArgument("worker \"" + id +
                                       "\": non-numeric stat");
      }
      entry.stats.push_back(s.number());
    }
    parsed.workers.emplace(id, std::move(entry));
  }
  *out = std::move(parsed);
  return Status::Ok();
}

}  // namespace crowdtruth::streaming
