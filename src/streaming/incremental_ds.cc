#include "streaming/incremental_ds.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/methods/ds.h"
#include "streaming/snapshot_util.h"
#include "util/special_functions.h"

namespace crowdtruth::streaming {

using util::JsonValue;
using util::Status;

namespace {

// The batch D&S configuration (ds.cc uses ConfusionEmConfig defaults): no
// informative priors, tiny smoothing keeping estimates strictly positive.
constexpr double kSmoothing = 1e-6;
constexpr double kPriorClass = 1e-6;

data::LabelId ArgmaxLowestIndex(const std::vector<double>& belief) {
  data::LabelId best = 0;
  for (int z = 1; z < static_cast<int>(belief.size()); ++z) {
    if (belief[z] > belief[best]) best = z;
  }
  return best;
}

}  // namespace

void StreamingDs::OnGrow() {
  const int l = num_choices_;
  if (class_sum_.empty()) {
    class_sum_.assign(l, 0.0);
    class_prior_.assign(l, 1.0 / l);
  }
  posterior_.resize(num_tasks(), std::vector<double>(l, 1.0 / l));
  labels_.resize(num_tasks(), 0);
  counts_.resize(num_workers(), std::vector<double>(l * l, 0.0));
  matrices_.resize(num_workers(), std::vector<double>(l * l, 1.0 / l));
  quality_.resize(num_workers(), 1.0 / l);
}

void StreamingDs::RefreshClassPrior() {
  double total = 0.0;
  for (int j = 0; j < num_choices_; ++j) {
    class_prior_[j] = kPriorClass + class_sum_[j];
    total += class_prior_[j];
  }
  for (double& p : class_prior_) p /= total;
}

void StreamingDs::RenormalizeWorker(data::WorkerId worker) {
  RenormalizeWorkerFrom(worker, counts_[worker]);
}

void StreamingDs::RenormalizeWorkerFrom(data::WorkerId worker,
                                        const std::vector<double>& counts) {
  const int l = num_choices_;
  std::vector<double>& matrix = matrices_[worker];
  for (int j = 0; j < l; ++j) {
    double row_total = 0.0;
    for (int k = 0; k < l; ++k) row_total += kSmoothing + counts[j * l + k];
    for (int k = 0; k < l; ++k) {
      matrix[j * l + k] = (kSmoothing + counts[j * l + k]) / row_total;
    }
  }
  double expected_correct = 0.0;
  for (int j = 0; j < l; ++j) {
    expected_correct += class_prior_[j] * matrix[j * l + j];
  }
  quality_[worker] = expected_correct;
}

void StreamingDs::RefreshTask(data::TaskId task,
                              std::set<data::WorkerId>* touched) {
  const int l = num_choices_;
  std::vector<double> log_belief(l);
  const auto& votes = by_task_[task];
  for (int j = 0; j < l; ++j) log_belief[j] = std::log(class_prior_[j]);
  for (const data::TaskVote& vote : votes) {
    const std::vector<double>& matrix = matrices_[vote.worker];
    for (int j = 0; j < l; ++j) {
      log_belief[j] += std::log(matrix[j * l + vote.label]);
    }
  }
  util::SoftmaxInPlace(log_belief);
  for (const data::TaskVote& vote : votes) {
    std::vector<double>& counts = counts_[vote.worker];
    for (int j = 0; j < l; ++j) {
      counts[j * l + vote.label] += log_belief[j] - posterior_[task][j];
    }
    touched->insert(vote.worker);
  }
  for (int j = 0; j < l; ++j) {
    class_sum_[j] += log_belief[j] - posterior_[task][j];
  }
  posterior_[task] = log_belief;
  labels_[task] = ArgmaxLowestIndex(log_belief);
}

void StreamingDs::OnObserve(const CategoricalAnswer& answer) {
  const int l = num_choices_;
  // A task's posterior joins the class-prior pool with its first answer
  // (the batch M-step skips unanswered tasks).
  if (by_task_[answer.task].size() == 1) {
    for (int j = 0; j < l; ++j) {
      class_sum_[j] += posterior_[answer.task][j];
    }
  }
  // The new vote's contribution to its worker's expected counts.
  std::vector<double>& counts = counts_[answer.worker];
  for (int j = 0; j < l; ++j) {
    counts[j * l + answer.label] += posterior_[answer.task][j];
  }
  RefreshClassPrior();
  RenormalizeWorker(answer.worker);

  std::set<data::TaskId> dirty = {answer.task};
  internal::DrainBacklog(options_.max_dirty_tasks, &backlog_, &dirty);
  for (int sweep = 0; sweep < options_.local_sweeps && !dirty.empty();
       ++sweep) {
    std::set<data::WorkerId> touched;
    for (data::TaskId task : dirty) RefreshTask(task, &touched);
    last_swept_ += static_cast<int>(dirty.size());
    RefreshClassPrior();
    std::set<data::TaskId> next;
    for (data::WorkerId worker : touched) {
      const double old_quality = quality_[worker];
      RenormalizeWorker(worker);
      if (std::fabs(quality_[worker] - old_quality) >
          options_.propagation_threshold) {
        for (const data::WorkerVote& vote : by_worker_[worker]) {
          next.insert(vote.task);
        }
      }
    }
    dirty = std::move(next);
    internal::SpillDirtySet(options_.max_dirty_tasks, &dirty, &backlog_);
  }
}

void StreamingDs::AdoptWorkerStats(data::WorkerId worker,
                                   int64_t answer_count,
                                   const std::vector<double>& stats) {
  if (answer_count <= 0 ||
      stats.size() != static_cast<size_t>(num_choices_ * num_choices_)) {
    return;
  }
  RenormalizeWorkerFrom(worker, stats);
}

void StreamingDs::AdoptBatch(const core::CategoricalResult& result) {
  const int l = num_choices_;
  posterior_ = result.posterior;
  labels_ = result.labels;
  matrices_ = result.worker_confusion;
  quality_ = result.worker_quality;
  // Rebuild the running sufficient statistics from the adopted posterior;
  // future Observes continue from the batch solution.
  for (data::WorkerId w = 0; w < num_workers(); ++w) {
    std::vector<double>& counts = counts_[w];
    std::fill(counts.begin(), counts.end(), 0.0);
    for (const data::WorkerVote& vote : by_worker_[w]) {
      for (int j = 0; j < l; ++j) {
        counts[j * l + vote.label] += posterior_[vote.task][j];
      }
    }
  }
  std::fill(class_sum_.begin(), class_sum_.end(), 0.0);
  for (data::TaskId t = 0; t < num_tasks(); ++t) {
    if (by_task_[t].empty()) continue;
    for (int j = 0; j < l; ++j) class_sum_[j] += posterior_[t][j];
  }
  RefreshClassPrior();
}

std::unique_ptr<core::CategoricalMethod> StreamingDs::MakeBatchMethod()
    const {
  return std::make_unique<core::DawidSkene>();
}

void StreamingDs::SnapshotState(JsonValue* state) const {
  state->Set("posterior", internal::ToJson(posterior_));
  state->Set("labels", internal::ToJson(labels_));
  state->Set("quality", internal::ToJson(quality_));
  state->Set("counts", internal::ToJson(counts_));
  state->Set("matrices", internal::ToJson(matrices_));
  state->Set("class_sum", internal::ToJson(class_sum_));
  state->Set("class_prior", internal::ToJson(class_prior_));
}

Status StreamingDs::RestoreState(const JsonValue& state) {
  const int l = num_choices_;
  Status status = internal::FromJson(state.Find("posterior"), "posterior",
                                     num_tasks(), l, &posterior_);
  if (!status.ok()) return status;
  status = internal::FromJson(state.Find("labels"), "labels", num_tasks(),
                              &labels_);
  if (!status.ok()) return status;
  status = internal::FromJson(state.Find("quality"), "quality",
                              num_workers(), &quality_);
  if (!status.ok()) return status;
  status = internal::FromJson(state.Find("counts"), "counts", num_workers(),
                              l * l, &counts_);
  if (!status.ok()) return status;
  status = internal::FromJson(state.Find("matrices"), "matrices",
                              num_workers(), l * l, &matrices_);
  if (!status.ok()) return status;
  // A method that never grew (e.g. an empty shard in a coordinator
  // checkpoint) snapshots class_sum/class_prior before their lazy OnGrow
  // initialization; restore that state verbatim.
  const JsonValue* class_sum = state.Find("class_sum");
  if (class_sum != nullptr &&
      class_sum->kind() == JsonValue::Kind::kArray &&
      class_sum->items().empty()) {
    class_sum_.clear();
    class_prior_.clear();
    return Status::Ok();
  }
  status = internal::FromJson(state.Find("class_sum"), "class_sum", l,
                              &class_sum_);
  if (!status.ok()) return status;
  return internal::FromJson(state.Find("class_prior"), "class_prior", l,
                            &class_prior_);
}

}  // namespace crowdtruth::streaming
