// Streaming Majority Voting. Per-task vote counts are updated in O(1) per
// answer; the estimate for the answered task moves only when the new count
// strictly beats the incumbent label's count (ties keep the incumbent, a
// deterministic stand-in for batch MV's seeded random tie-break — Resync
// adopts the batch tie-breaks verbatim).
#ifndef CROWDTRUTH_STREAMING_INCREMENTAL_MV_H_
#define CROWDTRUTH_STREAMING_INCREMENTAL_MV_H_

#include <memory>
#include <string>
#include <vector>

#include "streaming/incremental.h"

namespace crowdtruth::streaming {

class StreamingMajorityVote : public IncrementalCategoricalMethod {
 public:
  StreamingMajorityVote(int num_choices, StreamingOptions options)
      : IncrementalCategoricalMethod(num_choices, std::move(options)) {}

  std::string name() const override { return "MV"; }
  data::LabelId Estimate(data::TaskId task) const override {
    return labels_[task];
  }
  // Agreement fraction with the current estimates, computed on demand.
  double WorkerQuality(data::WorkerId worker) const override;

 protected:
  void OnGrow() override;
  void OnObserve(const CategoricalAnswer& answer) override;
  void AdoptBatch(const core::CategoricalResult& result) override {
    labels_ = result.labels;
  }
  std::unique_ptr<core::CategoricalMethod> MakeBatchMethod() const override;
  void SnapshotState(util::JsonValue* state) const override;
  util::Status RestoreState(const util::JsonValue& state) override;

 private:
  // counts_[t][z]: votes task t received for choice z.
  std::vector<std::vector<int>> counts_;
  std::vector<data::LabelId> labels_;
};

}  // namespace crowdtruth::streaming

#endif  // CROWDTRUTH_STREAMING_INCREMENTAL_MV_H_
