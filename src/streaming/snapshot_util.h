// JSON (de)serialization helpers shared by the incremental methods'
// Snapshot/Restore implementations. Internal to src/streaming/.
#ifndef CROWDTRUTH_STREAMING_SNAPSHOT_UTIL_H_
#define CROWDTRUTH_STREAMING_SNAPSHOT_UTIL_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/json_writer.h"
#include "util/status.h"

namespace crowdtruth::streaming::internal {

util::JsonValue ToJson(const std::vector<double>& values);
util::JsonValue ToJson(const std::vector<int>& values);
util::JsonValue ToJson(const std::vector<std::vector<double>>& rows);

// Each reader validates kind and (for FromJson with `expected_size` >= 0)
// length, reporting `field` in the error message.
util::Status FromJson(const util::JsonValue* value, const std::string& field,
                      int expected_size, std::vector<double>* out);
util::Status FromJson(const util::JsonValue* value, const std::string& field,
                      int expected_size, std::vector<int>* out);
// Rows must all have `row_size` entries.
util::Status FromJson(const util::JsonValue* value, const std::string& field,
                      int expected_size, int row_size,
                      std::vector<std::vector<double>>* out);

// Requires `value` to be a string field equal to `expected`.
util::Status ExpectString(const util::JsonValue* value,
                          const std::string& field,
                          const std::string& expected);

// Reads a non-negative integer field.
util::Status ReadInt(const util::JsonValue* value, const std::string& field,
                     int* out);

}  // namespace crowdtruth::streaming::internal

#endif  // CROWDTRUTH_STREAMING_SNAPSHOT_UTIL_H_
