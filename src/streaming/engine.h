// The streaming engine: wraps an incremental method with the plumbing a
// replay needs — string-id interning (first-appearance order, matching the
// batch CSV loaders), per-answer latency accounting, periodic full resyncs,
// and engine-level snapshots that also capture the id tables.
//
// Header-only template shared by the categorical and numeric stacks:
//
//   CategoricalStreamEngine engine(
//       MakeIncrementalCategorical("ZC", 2, {}), {.resync_interval = 1000});
//   engine.Observe("t17", "w3", 1);
//   ...
//   engine.Resync();  // final resync: estimates now equal the batch run
//
// When a core::TraceSink is installed, every resync emits one
// IterationEvent: `iteration` is the resync ordinal, `delta` the estimate
// change the resync caused, `truth_seconds` the observe time accumulated
// since the previous resync and `quality_seconds` the resync's own cost —
// reusing the PR-1 trace machinery so `crowdtruth_stream --trace` and run
// reports work unchanged.
#ifndef CROWDTRUTH_STREAMING_ENGINE_H_
#define CROWDTRUTH_STREAMING_ENGINE_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/trace.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "streaming/incremental.h"
#include "streaming/worker_summary.h"
#include "util/json_writer.h"
#include "util/latency.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace crowdtruth::streaming {

// Interns arbitrary string ids into dense [0, n) indices in
// first-appearance order, keeping the reverse mapping for output.
class StreamIdInterner {
 public:
  int Intern(const std::string& id) {
    auto it = index_.find(id);
    if (it != index_.end()) return it->second;
    const int dense = static_cast<int>(ids_.size());
    index_.emplace(id, dense);
    ids_.push_back(id);
    return dense;
  }

  // Dense id for `id`, or -1 when it has not been interned.
  int Find(const std::string& id) const {
    auto it = index_.find(id);
    return it == index_.end() ? -1 : it->second;
  }

  int size() const { return static_cast<int>(ids_.size()); }
  const std::string& Name(int dense) const { return ids_[dense]; }
  const std::vector<std::string>& ids() const { return ids_; }

  util::JsonValue ToJson() const {
    util::JsonValue array = util::JsonValue::Array();
    for (const std::string& id : ids_) array.Append(id);
    return array;
  }

  util::Status Restore(const util::JsonValue* array,
                       const std::string& field) {
    if (array == nullptr ||
        array->kind() != util::JsonValue::Kind::kArray) {
      return util::Status::InvalidArgument("snapshot field \"" + field +
                                           "\" missing or not an array");
    }
    ids_.clear();
    index_.clear();
    for (const util::JsonValue& item : array->items()) {
      if (item.kind() != util::JsonValue::Kind::kString) {
        return util::Status::InvalidArgument(
            "snapshot field \"" + field + "\" has a non-string entry");
      }
      if (index_.count(item.string()) > 0) {
        return util::Status::InvalidArgument(
            "snapshot field \"" + field + "\" has a duplicate id \"" +
            item.string() + "\"");
      }
      index_.emplace(item.string(), static_cast<int>(ids_.size()));
      ids_.push_back(item.string());
    }
    return util::Status::Ok();
  }

 private:
  std::vector<std::string> ids_;
  std::unordered_map<std::string, int> index_;
};

struct EngineConfig {
  // Run a full batch resync every this many answers; 0 disables periodic
  // resyncs (the caller may still Resync() explicitly, e.g. once at the end
  // of a replay).
  int resync_interval = 1000;
  // Extra metric label for multi-tenant serving (src/server/): every stream
  // metric series carries {method, tenant}. Empty outside the server.
  std::string tenant;
};

struct EngineStats {
  int64_t answers = 0;
  int resyncs = 0;
  // Per-answer Observe cost (interning + incremental update).
  util::LatencyRecorder observe_latency;
  // Total wall-clock spent inside resyncs.
  double resync_seconds = 0.0;
};

namespace internal_engine {

inline void SetPayload(CategoricalAnswer& answer, data::LabelId label) {
  answer.label = label;
}
inline void SetPayload(NumericAnswer& answer, double value) {
  answer.value = value;
}

// Estimate change caused by a resync: fraction of labels that flipped
// (categorical) or max absolute value change (numeric).
inline double EstimateDelta(const std::vector<data::LabelId>& before,
                            const std::vector<data::LabelId>& after) {
  if (after.empty()) return 0.0;
  int changed = 0;
  for (size_t i = 0; i < after.size(); ++i) {
    if (i >= before.size() || before[i] != after[i]) ++changed;
  }
  return static_cast<double>(changed) / after.size();
}

inline double EstimateDelta(const std::vector<double>& before,
                            const std::vector<double>& after) {
  double max_diff = 0.0;
  for (size_t i = 0; i < after.size(); ++i) {
    const double prev = i < before.size() ? before[i] : 0.0;
    max_diff = std::max(max_diff, std::fabs(after[i] - prev));
  }
  return max_diff;
}

}  // namespace internal_engine

template <typename Method>
class StreamEngine {
 public:
  using BatchResult = typename Method::BatchResult;

  StreamEngine(std::unique_ptr<Method> method, EngineConfig config)
      : method_(std::move(method)), config_(config) {
    CROWDTRUTH_CHECK(method_ != nullptr);
  }

  // Ingests one answer keyed by string ids. `payload` is a LabelId for
  // categorical engines, a double for numeric ones. Runs a periodic resync
  // when the configured interval elapses.
  template <typename Payload>
  util::Status Observe(const std::string& task, const std::string& worker,
                       Payload payload) {
    obs::Span span("engine_observe");
    util::Stopwatch stopwatch;
    typename Method::Answer answer;
    answer.task = tasks_.Intern(task);
    answer.worker = workers_.Intern(worker);
    internal_engine::SetPayload(answer, payload);
    util::Status status = method_->Observe(answer);
    if (!status.ok()) return status;
    const double seconds = stopwatch.ElapsedSeconds();
    stats_.observe_latency.Record(seconds);
    ++stats_.answers;
    if (EngineMetricSet* m = Metrics()) {
      m->answers->Increment();
      m->observe_latency->Observe(seconds);
      m->observe_latency_digest->Observe(seconds);
      m->sweep_depth->Observe(method_->last_observe_swept());
      m->backlog->Set(static_cast<double>(method_->backlog_size()));
    }
    if (span.armed()) {
      span.Annotate("method", method_->name());
      span.Annotate("swept",
                    static_cast<int64_t>(method_->last_observe_swept()));
    }
    if (config_.resync_interval > 0 &&
        stats_.answers % config_.resync_interval == 0) {
      Resync();
    }
    return util::Status::Ok();
  }

  // Full batch resync (see IncrementalCategoricalMethod::Resync).
  BatchResult Resync() {
    obs::Span span("engine_resync");
    const auto before = method_->Estimates();
    util::Stopwatch stopwatch;
    BatchResult result = method_->Resync();
    const double seconds = stopwatch.ElapsedSeconds();
    stats_.resync_seconds += seconds;
    ++stats_.resyncs;
    if (EngineMetricSet* m = Metrics()) {
      m->resyncs->Increment();
      m->resync_seconds->Increment(seconds);
      m->resync_duration->Observe(seconds);
      m->resync_duration_digest->Observe(seconds);
      m->backlog->Set(static_cast<double>(method_->backlog_size()));
    }
    if (span.armed()) {
      span.Annotate("method", method_->name());
      span.Annotate("resync_index", static_cast<int64_t>(stats_.resyncs));
    }
    if (trace_ != nullptr) {
      core::IterationEvent event;
      event.iteration = stats_.resyncs;
      event.delta =
          internal_engine::EstimateDelta(before, method_->Estimates());
      event.truth_seconds =
          stats_.observe_latency.total_seconds() - observe_seconds_traced_;
      event.quality_seconds = seconds;
      trace_->OnIteration(event);
    }
    observe_seconds_traced_ = stats_.observe_latency.total_seconds();
    return result;
  }

  // Adopts an externally computed batch solution (a shard coordinator's
  // global resync) exactly like Resync() adopts its own; counts as a resync
  // in stats and metrics.
  void AdoptResult(const BatchResult& result) {
    obs::Span span("engine_adopt_result");
    util::Stopwatch stopwatch;
    method_->AdoptResult(result);
    const double seconds = stopwatch.ElapsedSeconds();
    stats_.resync_seconds += seconds;
    ++stats_.resyncs;
    if (EngineMetricSet* m = Metrics()) {
      m->resyncs->Increment();
      m->resync_seconds->Increment(seconds);
      m->resync_duration->Observe(seconds);
      m->resync_duration_digest->Observe(seconds);
      m->backlog->Set(static_cast<double>(method_->backlog_size()));
    }
  }

  // --- Cross-shard summary exchange ---
  //
  // At a shard barrier every shard exports its per-worker sufficient
  // statistics keyed by worker *string* id (dense ids differ across
  // shards), the coordinator merges them element-wise, and each shard
  // adopts the merged summary so its serving estimates reflect workers'
  // answers on every shard, not just the local slice.
  WorkerSummary ExportWorkerSummary() const {
    WorkerSummary summary;
    summary.method = method_->name();
    summary.kind = Method::kKind;
    if constexpr (requires { method_->num_choices(); }) {
      summary.num_choices = method_->num_choices();
    }
    for (int w = 0; w < workers_.size(); ++w) {
      WorkerSummaryEntry entry;
      entry.answer_count = method_->WorkerAnswerCount(w);
      entry.stats = method_->ExportWorkerStats(w);
      summary.workers.emplace(workers_.Name(w), std::move(entry));
    }
    return summary;
  }

  // Adopts a (merged) summary: workers unknown to this shard are ignored,
  // known workers get their parameters re-derived from the global
  // statistics via the method's AdoptWorkerStats.
  util::Status AdoptWorkerSummary(const WorkerSummary& summary) {
    if (summary.kind != Method::kKind ||
        summary.method != method_->name()) {
      return util::Status::InvalidArgument(
          "worker summary is for " + summary.kind + " method \"" +
          summary.method + "\"; engine runs \"" + method_->name() + "\"");
    }
    if constexpr (requires { method_->num_choices(); }) {
      if (summary.num_choices != method_->num_choices()) {
        return util::Status::InvalidArgument(
            "worker summary num_choices " +
            std::to_string(summary.num_choices) + " != engine's " +
            std::to_string(method_->num_choices()));
      }
    }
    for (int w = 0; w < workers_.size(); ++w) {
      auto it = summary.workers.find(workers_.Name(w));
      if (it == summary.workers.end()) continue;
      method_->AdoptWorkerStats(w, it->second.answer_count,
                                it->second.stats);
    }
    return util::Status::Ok();
  }

  // Version 2 snapshots are self-describing: they carry the method kind
  // ("categorical"/"numeric"), the method name, the label-space size and
  // the resync interval, so a restorer (or a shard coordinator reading a
  // checkpoint) can validate compatibility before touching state. Version 1
  // documents (no descriptor fields) restore unchanged.
  util::JsonValue Snapshot() const {
    util::JsonValue root = util::JsonValue::Object();
    root.Set("format", "crowdtruth_stream_snapshot");
    root.Set("version", 2);
    root.Set("kind", Method::kKind);
    root.Set("method_name", method_->name());
    if constexpr (requires { method_->num_choices(); }) {
      root.Set("num_choices", method_->num_choices());
    }
    root.Set("resync_interval", config_.resync_interval);
    root.Set("task_ids", tasks_.ToJson());
    root.Set("worker_ids", workers_.ToJson());
    root.Set("answers_seen", static_cast<int64_t>(stats_.answers));
    root.Set("resyncs", stats_.resyncs);
    root.Set("method", method_->Snapshot());
    return root;
  }

  // Restores id tables, counters and the method state. Latency samples are
  // not carried across snapshots (they describe a process, not the state).
  // Unknown snapshot versions are a typed kValidationError so callers can
  // distinguish "from a newer build" from plain corruption.
  util::Status Restore(const util::JsonValue& snapshot) {
    const util::JsonValue* format = snapshot.Find("format");
    if (format == nullptr ||
        format->kind() != util::JsonValue::Kind::kString ||
        format->string() != "crowdtruth_stream_snapshot") {
      return util::Status::InvalidArgument(
          "not a crowdtruth_stream_snapshot document");
    }
    const util::JsonValue* version = snapshot.Find("version");
    if (version == nullptr ||
        version->kind() != util::JsonValue::Kind::kNumber) {
      return util::Status::InvalidArgument(
          "snapshot field \"version\" missing or not a number");
    }
    const int snapshot_version = static_cast<int>(version->number());
    if (snapshot_version != 1 && snapshot_version != 2) {
      return util::Status::ValidationError(
          "unsupported stream snapshot version " +
          std::to_string(snapshot_version));
    }
    if (snapshot_version >= 2) {
      const util::JsonValue* kind = snapshot.Find("kind");
      if (kind == nullptr ||
          kind->kind() != util::JsonValue::Kind::kString ||
          kind->string() != Method::kKind) {
        return util::Status::InvalidArgument(
            std::string("snapshot kind does not match this engine (want ") +
            Method::kKind + ")");
      }
      const util::JsonValue* method_name = snapshot.Find("method_name");
      if (method_name == nullptr ||
          method_name->kind() != util::JsonValue::Kind::kString ||
          method_name->string() != method_->name()) {
        return util::Status::InvalidArgument(
            "snapshot method_name does not match \"" + method_->name() +
            "\"");
      }
    }
    util::Status status = tasks_.Restore(snapshot.Find("task_ids"),
                                         "task_ids");
    if (!status.ok()) return status;
    status = workers_.Restore(snapshot.Find("worker_ids"), "worker_ids");
    if (!status.ok()) return status;
    const util::JsonValue* answers_seen = snapshot.Find("answers_seen");
    const util::JsonValue* resyncs = snapshot.Find("resyncs");
    if (answers_seen == nullptr ||
        answers_seen->kind() != util::JsonValue::Kind::kNumber ||
        resyncs == nullptr ||
        resyncs->kind() != util::JsonValue::Kind::kNumber) {
      return util::Status::InvalidArgument(
          "snapshot counters missing or not numbers");
    }
    const util::JsonValue* method = snapshot.Find("method");
    if (method == nullptr) {
      return util::Status::InvalidArgument(
          "snapshot field \"method\" missing");
    }
    status = method_->Restore(*method);
    if (!status.ok()) return status;
    stats_ = EngineStats();
    stats_.answers = static_cast<int64_t>(answers_seen->number());
    stats_.resyncs = static_cast<int>(resyncs->number());
    observe_seconds_traced_ = 0.0;
    return util::Status::Ok();
  }

  Method& method() { return *method_; }
  const Method& method() const { return *method_; }
  const EngineStats& stats() const { return stats_; }
  const EngineConfig& config() const { return config_; }
  const StreamIdInterner& tasks() const { return tasks_; }
  const StreamIdInterner& workers() const { return workers_; }
  void set_trace(core::TraceSink* trace) { trace_ = trace; }

  // --- Runtime retuning (the server's adaptive controller) ---
  //
  // Both knobs are safe to change mid-stream: they only steer *future*
  // periodic-resync scheduling and dirty-task spills, never recorded
  // answers or adopted batch state. Because Resync() adopts the batch
  // solution verbatim, a retuned engine and a fresh engine replaying the
  // same log are bit-identical again after their next resync
  // (tests/streaming_test.cc pins this).
  void set_resync_interval(int interval) {
    config_.resync_interval = interval;
  }
  void set_max_dirty_tasks(int cap) { method_->set_max_dirty_tasks(cap); }

  // Relabels the engine's metric series (new tenant label children are
  // resolved lazily on the next Observe/Resync).
  void set_tenant_label(const std::string& tenant) {
    config_.tenant = tenant;
    metrics_registry_ = nullptr;
  }

 private:
  // Cached children of the process-wide stream metric families, labeled by
  // the wrapped method's name and the owning tenant ("" outside the
  // server). Resolved once per installed registry so the per-answer cost is
  // a relaxed pointer load plus atomic bumps.
  struct EngineMetricSet {
    obs::Counter* answers = nullptr;
    obs::Histogram* observe_latency = nullptr;
    obs::Histogram* sweep_depth = nullptr;
    obs::Gauge* backlog = nullptr;
    obs::Counter* resyncs = nullptr;
    obs::Counter* resync_seconds = nullptr;
    obs::Histogram* resync_duration = nullptr;
    // T-digest twins of the latency histograms: true (approximate)
    // quantiles for the adaptive controller's p99-aware retuning, where
    // bucket interpolation is too coarse.
    obs::Digest* observe_latency_digest = nullptr;
    obs::Digest* resync_duration_digest = nullptr;
  };

  EngineMetricSet* Metrics() {
    obs::MetricRegistry* const registry = obs::ProcessMetrics();
    if (registry == nullptr) return nullptr;
    if (metrics_registry_ != registry) {
      const std::vector<std::string> names = {"method", "tenant"};
      const std::vector<std::string> label = {method_->name(),
                                              config_.tenant};
      metric_set_.answers =
          &registry
               ->AddCounterFamily("crowdtruth_stream_answers_total",
                                  "Answers ingested by the stream engine.",
                                  names)
               .WithLabels(label);
      metric_set_.observe_latency =
          &registry
               ->AddHistogramFamily(
                   "crowdtruth_stream_observe_latency_seconds",
                   "Per-answer Observe cost (interning + incremental "
                   "update).",
                   names, obs::HistogramBuckets::LatencySeconds())
               .WithLabels(label);
      metric_set_.sweep_depth =
          &registry
               ->AddHistogramFamily(
                   "crowdtruth_stream_sweep_depth_tasks",
                   "Tasks re-estimated by one Observe's dirty-task sweeps.",
                   names, obs::HistogramBuckets::PowersOfTwo(13))
               .WithLabels(label);
      metric_set_.backlog =
          &registry
               ->AddGaugeFamily(
                   "crowdtruth_stream_backlog_tasks",
                   "Dirty tasks deferred by max_dirty_tasks, awaiting a "
                   "sweep.",
                   names)
               .WithLabels(label);
      metric_set_.resyncs =
          &registry
               ->AddCounterFamily("crowdtruth_stream_resyncs_total",
                                  "Full batch resyncs run by the engine.",
                                  names)
               .WithLabels(label);
      metric_set_.resync_seconds =
          &registry
               ->AddCounterFamily(
                   "crowdtruth_stream_resync_seconds_total",
                   "Total wall-clock spent inside resyncs.", names)
               .WithLabels(label);
      metric_set_.resync_duration =
          &registry
               ->AddHistogramFamily(
                   "crowdtruth_stream_resync_duration_seconds",
                   "Wall-clock cost of individual resyncs.", names,
                   obs::HistogramBuckets::LatencySeconds())
               .WithLabels(label);
      metric_set_.observe_latency_digest =
          &registry
               ->AddDigestFamily(
                   "crowdtruth_stream_observe_latency_digest_seconds",
                   "T-digest sketch of per-answer Observe cost.", names,
                   obs::DigestOptions())
               .WithLabels(label);
      metric_set_.resync_duration_digest =
          &registry
               ->AddDigestFamily(
                   "crowdtruth_stream_resync_duration_digest_seconds",
                   "T-digest sketch of individual resync cost.", names,
                   obs::DigestOptions())
               .WithLabels(label);
      metrics_registry_ = registry;
    }
    return &metric_set_;
  }

  std::unique_ptr<Method> method_;
  EngineConfig config_;
  StreamIdInterner tasks_;
  StreamIdInterner workers_;
  EngineStats stats_;
  core::TraceSink* trace_ = nullptr;
  // Observe seconds already attributed to an emitted trace event.
  double observe_seconds_traced_ = 0.0;
  EngineMetricSet metric_set_;
  obs::MetricRegistry* metrics_registry_ = nullptr;
};

using CategoricalStreamEngine = StreamEngine<IncrementalCategoricalMethod>;
using NumericStreamEngine = StreamEngine<IncrementalNumericMethod>;

}  // namespace crowdtruth::streaming

#endif  // CROWDTRUTH_STREAMING_ENGINE_H_
