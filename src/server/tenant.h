// One tenant of the streaming server: a categorical StreamEngine plus the
// durable and protective plumbing around it.
//
//   * ingestion — newline-delimited `worker,task,label` records are parsed,
//     routed through the PR-4 record validators (data/validate.h) under the
//     tenant's BadRecordPolicy, then Observe()d one at a time. Only answers
//     the engine actually accepted are appended to the tenant's append-only
//     answer log, so replaying that log offline reproduces the tenant's
//     estimates bit-identically (the e2e test and CI pin this).
//   * admission — the adaptive controller grants each tenant a ticket
//     budget per control interval; an ingest larger than the remaining
//     budget is shed whole (HTTP 429 upstream) instead of half-applied.
//   * retuning — the controller adjusts resync_interval / max_dirty_tasks
//     live through Retune(); both knobs only steer future scheduling, so
//     correctness (batch equivalence at resync) is untouched.
#ifndef CROWDTRUTH_SERVER_TENANT_H_
#define CROWDTRUTH_SERVER_TENANT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/answer_log.h"
#include "data/validate.h"
#include "shard/coordinator.h"
#include "streaming/engine.h"
#include "util/status.h"

namespace crowdtruth::server {

struct TenantOptions {
  std::string method = "ZC";
  int num_choices = 2;
  // > 1 runs the tenant as a task-partitioned shard coordinator
  // (src/shard/) instead of a single engine: resync_interval becomes the
  // cross-shard barrier interval and ?resync=1 triggers the global solve.
  int shards = 1;
  // Forwarded to streaming::EngineConfig / StreamingOptions.
  int resync_interval = 1000;
  int local_sweeps = 2;
  int max_dirty_tasks = 32;
  int seed = 42;
  // What a malformed ingest record does: kReject fails the whole request,
  // the repair policies drop the offending rows and ingest the rest.
  data::BadRecordPolicy bad_record_policy = data::BadRecordPolicy::kReject;
  // Directory for the tenant's append-only answer log; empty disables
  // durability (the engine still serves, nothing is logged).
  std::string data_dir;
};

// Outcome of one ingest request (all counters per-request).
struct IngestResult {
  int64_t accepted = 0;
  // Rows a repair policy removed: validator findings plus engine-level
  // duplicate rejections.
  int64_t dropped = 0;
  int64_t duplicates = 0;
  int64_t out_of_range = 0;
  int64_t parse_errors = 0;
  std::string ToJson() const;
};

class Tenant {
 public:
  // Builds the engine (streaming registry lookup) and, when
  // options.data_dir is set, creates `<data_dir>/<name>.log`. Fails with
  // InvalidArgument for unknown methods / bad num_choices.
  static util::Status Create(const std::string& name,
                             const TenantOptions& options,
                             std::unique_ptr<Tenant>* out);

  // Wraps an existing engine (crowdtruth_stream --serve adopts the engine
  // it just replayed as a tenant). No answer log is attached.
  static std::unique_ptr<Tenant> Adopt(
      const std::string& name, const TenantOptions& options,
      std::unique_ptr<streaming::CategoricalStreamEngine> engine);

  const std::string& name() const { return name_; }
  const TenantOptions& options() const { return options_; }
  // Single-shard tenants only (sharded tenants have no single engine;
  // check sharded() first).
  streaming::CategoricalStreamEngine& engine() { return *engine_; }
  const streaming::CategoricalStreamEngine& engine() const {
    return *engine_;
  }
  bool sharded() const { return coordinator_ != nullptr; }
  shard::CategoricalShardCoordinator& coordinator() { return *coordinator_; }

  // Engine-or-coordinator-agnostic facts the HTTP layer reports.
  std::string method_name() const;
  int num_choices() const;
  int64_t answers_seen() const;

  // Ingests a newline-delimited `worker,task,label` body. Typed failures:
  // ParseError (malformed row under kReject), ValidationError (validator
  // finding under kReject), InvalidArgument (engine rejection under
  // kReject), IoError (answer log write). Repair policies degrade these to
  // dropped-row counts and keep going.
  util::Status Ingest(const std::string& body, IngestResult* result);

  // Current estimates as `task,truth` CSV (the exact format
  // `crowdtruth_stream --output` writes, enabling bit-identical diffs
  // against an offline replay of the tenant's log).
  std::string TruthCsv() const;
  // The same estimates plus engine counters as a JSON document.
  std::string TruthJson() const;

  // Forces a full batch resync now (e.g. `POST ...?resync=1` before a
  // bit-identical comparison against a finally-resynced offline replay).
  void ForceResync();

  // Engine snapshot as pretty-printed JSON (crowdtruth_stream
  // --snapshot_in accepts it).
  std::string SnapshotJson() const;

  const std::string& log_path() const { return log_path_; }

  // --- Admission tickets (owned by the adaptive controller) ---
  // A request with more records than the remaining budget is shed whole.
  // A negative budget means "unlimited" (controller disabled).
  void GrantTickets(int64_t budget) { tickets_ = budget; }
  int64_t tickets() const { return tickets_; }
  bool Admit(int64_t records);

  // --- Live retuning (owned by the adaptive controller) ---
  void Retune(int resync_interval, int max_dirty_tasks);
  int resync_interval() const { return resync_interval_; }
  int max_dirty_tasks() const { return max_dirty_tasks_; }

  int64_t total_accepted() const { return total_accepted_; }
  int64_t total_dropped() const { return total_dropped_; }
  int64_t total_shed() const { return total_shed_; }
  void CountShed(int64_t records) { total_shed_ += records; }

 private:
  Tenant(std::string name, TenantOptions options,
         std::unique_ptr<streaming::CategoricalStreamEngine> engine);
  Tenant(std::string name, TenantOptions options,
         std::unique_ptr<shard::CategoricalShardCoordinator> coordinator);

  // One accepted answer into whichever backend this tenant runs.
  util::Status ObserveAnswer(const std::string& task,
                             const std::string& worker, data::LabelId label);

  std::string name_;
  TenantOptions options_;
  // Exactly one of these is set: engine_ for shards == 1, coordinator_
  // for a task-partitioned tenant.
  std::unique_ptr<streaming::CategoricalStreamEngine> engine_;
  std::unique_ptr<shard::CategoricalShardCoordinator> coordinator_;
  std::unique_ptr<data::AnswerLogWriter> log_;
  std::string log_path_;

  int64_t tickets_ = -1;  // unlimited until the controller speaks
  int resync_interval_ = 0;
  int max_dirty_tasks_ = 0;
  int64_t total_accepted_ = 0;
  int64_t total_dropped_ = 0;
  int64_t total_shed_ = 0;
};

}  // namespace crowdtruth::server

#endif  // CROWDTRUTH_SERVER_TENANT_H_
