// The multi-tenant streaming server: one epoll event loop hosting both
// planes of the process —
//
//   observability (ported off the poll-based exporter):
//     GET  /metrics           Prometheus text exposition
//     GET  /metrics.json      JSON exposition
//     GET  /healthz           liveness ("ok")
//     GET  /debug/trace       flight-recorder dump as Chrome trace_event
//                             JSON (requires an installed FlightRecorder)
//
//   ingestion / serving:
//     GET  /v1/tenants                        list tenants
//     POST /v1/tenants/<id>/answers           newline-delimited
//                                             `worker,task,label` records;
//                                             auto-creates the tenant
//                                             (?method=, ?num_choices=,
//                                             ?on_bad_record= override the
//                                             server defaults on creation)
//     GET  /v1/tenants/<id>/truth             current estimates
//                                             (?format=json, ?resync=1)
//     POST /v1/tenants/<id>/snapshot          full engine snapshot (JSON)
//
// Everything — accepts, reads, inference, controller ticks — runs on the
// loop thread: no locks anywhere near the engines, and a tenant's answer
// stream is ingested in exactly the order requests complete, which is what
// makes the tenant's answer log an exact replay script.
#ifndef CROWDTRUTH_SERVER_SERVER_H_
#define CROWDTRUTH_SERVER_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "server/controller.h"
#include "server/event_loop.h"
#include "server/http_server.h"
#include "server/tenant.h"
#include "util/status.h"

namespace crowdtruth::server {

struct ServerConfig {
  int port = 0;  // 0 picks an ephemeral port (reported by port())
  size_t max_body_bytes = 8 * 1024 * 1024;
  // Defaults for auto-created tenants (method/num_choices/policy
  // overridable per tenant via creation query parameters).
  TenantOptions tenant_defaults;
  // Most distinct `tenant` label values the metric registry materializes;
  // further tenants share the "other" series. <= 0 leaves the label
  // uncapped.
  int tenant_label_cap = 64;
  // The adaptive controller; enabled = false serves with static knobs and
  // unlimited admission.
  bool controller_enabled = true;
  AdaptiveControllerConfig controller;
};

class StreamingServer {
 public:
  // `registry` may be null (serving works, /metrics surfaces are empty and
  // the controller free-runs on engine-side state only).
  StreamingServer(ServerConfig config, obs::MetricRegistry* registry);
  ~StreamingServer();

  // Binds the port, installs the controller timer, arms the loop.
  util::Status Start();
  int port() const { return listener_ == nullptr ? 0 : listener_->port(); }

  // Serves until RequestStop() (async-signal-safe, for SIGINT/SIGTERM
  // handlers). Run() blocks the calling thread.
  void Run() { loop_.Run(); }
  void RequestStop() { loop_.RequestStop(); }
  // One loop iteration, for callers embedding the server in their own
  // loop (tests, crowdtruth_stream --serve).
  int RunOnce(int max_wait_ms = 100) { return loop_.RunOnce(max_wait_ms); }

  void Stop();

  // Full request dispatch, also the seam the tests drive without sockets.
  HttpResponse Handle(const HttpRequest& request);

  // Registers a pre-built tenant (crowdtruth_stream --serve adopts its
  // replayed engine this way). Fails on duplicate names.
  util::Status AddTenant(std::unique_ptr<Tenant> tenant);
  Tenant* FindTenant(const std::string& name);
  std::vector<Tenant*> Tenants();

  AdaptiveController& controller() { return controller_; }
  EventLoop& loop() { return loop_; }

 private:
  HttpResponse HandleTenants(const HttpRequest& request);
  HttpResponse HandleIngest(const HttpRequest& request, const std::string& name);
  HttpResponse HandleTruth(const HttpRequest& request, Tenant* tenant);
  HttpResponse HandleSnapshot(Tenant* tenant);
  // Finds or (on the ingest route) creates the tenant named in the path.
  util::Status ResolveTenant(const HttpRequest& request,
                             const std::string& name, bool create,
                             Tenant** out);
  void CountRequest(int status);
  // Feeds the route-labeled request-duration t-digest. `route` is a coarse
  // handler label (ingest/truth/metrics/...), never the raw path — paths
  // embed tenant ids and would blow up series cardinality.
  void ObserveRequest(const char* route, double seconds);

  ServerConfig config_;
  obs::MetricRegistry* registry_;
  EventLoop loop_;
  std::unique_ptr<HttpListener> listener_;
  AdaptiveController controller_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  uint64_t controller_timer_ = 0;
};

// Maps a util::Status to the HTTP error response the API answers with:
// ParseError/InvalidArgument -> 400, ValidationError -> 422,
// NotFound -> 404, IoError -> 500. The body is JsonErrorResponse with the
// StatusCodeName as the error code.
HttpResponse StatusToHttp(const util::Status& status);

// True when `name` is a safe tenant id: [A-Za-z0-9._-], 1..64 chars, no
// leading dot (tenant names become log file names under data_dir).
bool ValidTenantName(const std::string& name);

}  // namespace crowdtruth::server

#endif  // CROWDTRUTH_SERVER_SERVER_H_
