// HTTP message layer for the event-loop server (src/server/event_loop.h).
//
// The poll-based metrics exporter (obs/http_exporter.h) only ever parses a
// GET request line; the serving plane also ingests POST bodies, so this
// layer is a real — if deliberately small — HTTP/1.x message codec:
//
//   * HttpRequestParser — incremental parser fed from non-blocking reads.
//     Accumulates the header block, then the body per Content-Length, and
//     reports oversized headers (431), oversized bodies (413) and
//     malformed framing (400) as typed errors instead of hanging.
//   * HttpRequest       — method, path, parsed query parameters,
//     lower-cased headers, body.
//   * HttpResponse      — status + content type + body, serialized with
//     Content-Length and Connection: close (one request per connection
//     keeps the connection state machine trivial; curl and Prometheus
//     scrapers open a fresh connection per request anyway).
//
// No TLS, no chunked transfer, no multipart: the server binds loopback and
// speaks newline-delimited records and JSON.
#ifndef CROWDTRUTH_SERVER_HTTP_H_
#define CROWDTRUTH_SERVER_HTTP_H_

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace crowdtruth::server {

struct HttpRequest {
  std::string method;  // "GET", "POST", ... (upper-case as sent)
  std::string path;    // target with the query string stripped
  std::map<std::string, std::string> query;    // decoded ?key=value pairs
  std::map<std::string, std::string> headers;  // names lower-cased
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain";
  std::string body;
  // Extra headers beyond Content-Type/Content-Length/Connection
  // (e.g. Retry-After on 429).
  std::vector<std::pair<std::string, std::string>> headers;
};

// Standard reason phrase for the status codes the server emits.
const char* HttpStatusReason(int status);

// Full wire form: status line, headers, blank line, body.
std::string SerializeHttpResponse(const HttpResponse& response);

// A JSON error body {"error": code, "message": ...} with the matching
// status — `code` is a util::StatusCode name ("ParseError",
// "ValidationError") so scripted clients can classify failures the same
// way CLI users classify exit messages.
HttpResponse JsonErrorResponse(int status, const std::string& code,
                               const std::string& message);

// Incremental request parser. Feed() bytes as they arrive; once Done, the
// parsed request is in request(). The parser handles exactly one request —
// connections are close-after-response.
class HttpRequestParser {
 public:
  explicit HttpRequestParser(size_t max_body_bytes)
      : max_body_bytes_(max_body_bytes) {}

  enum class State { kHeader, kBody, kDone, kError };

  State Feed(const char* data, size_t size);
  State state() const { return state_; }

  const HttpRequest& request() const { return request_; }
  // Set in state kError: the HTTP status to answer with and a short
  // human-readable reason.
  int error_status() const { return error_status_; }
  const std::string& error() const { return error_; }

 private:
  State Fail(int status, const std::string& message);
  State ParseHeaderBlock(size_t header_end, size_t separator_size);
  State FinishIfBodyComplete();

  size_t max_body_bytes_;
  State state_ = State::kHeader;
  std::string buffer_;
  size_t body_expected_ = 0;
  HttpRequest request_;
  int error_status_ = 400;
  std::string error_;
};

}  // namespace crowdtruth::server

#endif  // CROWDTRUTH_SERVER_HTTP_H_
