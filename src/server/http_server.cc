#include "server/http_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/logging.h"

namespace crowdtruth::server {

HttpListener::HttpListener(EventLoop* loop, Handler handler,
                           size_t max_body_bytes)
    : loop_(loop), handler_(std::move(handler)),
      max_body_bytes_(max_body_bytes) {
  CROWDTRUTH_CHECK(loop_ != nullptr);
}

HttpListener::~HttpListener() { Close(); }

util::Status HttpListener::Listen(int port) {
  if (listen_fd_ >= 0) {
    return util::Status::InvalidArgument("listener already bound");
  }
  const int fd =
      socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return util::Status::IoError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  const int enable = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string message = std::string("bind: ") + std::strerror(errno);
    close(fd);
    return util::Status::IoError(message);
  }
  if (listen(fd, 64) != 0) {
    const std::string message = std::string("listen: ") + std::strerror(errno);
    close(fd);
    return util::Status::IoError(message);
  }
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_size) != 0) {
    const std::string message =
        std::string("getsockname: ") + std::strerror(errno);
    close(fd);
    return util::Status::IoError(message);
  }
  port_ = ntohs(bound.sin_port);

  util::Status added = loop_->Add(fd, EPOLLIN, [this](uint32_t) {
    OnAcceptable();
  });
  if (!added.ok()) {
    close(fd);
    return added;
  }
  listen_fd_ = fd;
  return util::Status::Ok();
}

void HttpListener::Close() {
  if (listen_fd_ >= 0) {
    loop_->Remove(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
  while (!connections_.empty()) {
    CloseConnection(connections_.begin()->first);
  }
}

void HttpListener::OnAcceptable() {
  // Drain the accept queue: level-triggered epoll would re-report it, but
  // one pass per wakeup keeps latency down under connection bursts.
  while (true) {
    const int client = accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (client < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or a transient per-connection error; epoll retries
    }
    const int enable = 1;
    setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    auto connection = std::make_unique<Connection>(max_body_bytes_);
    connection->fd = client;
    util::Status added =
        loop_->Add(client, EPOLLIN, [this, client](uint32_t events) {
          OnConnectionEvent(client, events);
        });
    if (!added.ok()) {
      close(client);
      continue;
    }
    connections_[client] = std::move(connection);
  }
}

void HttpListener::OnConnectionEvent(int fd, uint32_t events) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection* connection = it->second.get();
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    CloseConnection(fd);
    return;
  }
  if ((events & EPOLLIN) != 0 && !connection->responded) {
    ReadAndMaybeRespond(connection);
    // ReadAndMaybeRespond may have closed the connection.
    if (connections_.find(fd) == connections_.end()) return;
  }
  if ((events & EPOLLOUT) != 0 && connection->responded) {
    FlushWrites(connection);
  }
}

void HttpListener::ReadAndMaybeRespond(Connection* connection) {
  char buffer[16 * 1024];
  while (true) {
    const ssize_t got = read(connection->fd, buffer, sizeof(buffer));
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // need more bytes
      CloseConnection(connection->fd);
      return;
    }
    if (got == 0) {
      // Peer closed before completing a request.
      CloseConnection(connection->fd);
      return;
    }
    const HttpRequestParser::State state =
        connection->parser.Feed(buffer, static_cast<size_t>(got));
    if (state == HttpRequestParser::State::kDone) {
      HttpResponse response = handler_(connection->parser.request());
      ++requests_served_;
      connection->output = SerializeHttpResponse(response);
      connection->responded = true;
      FlushWrites(connection);
      return;
    }
    if (state == HttpRequestParser::State::kError) {
      const HttpResponse response = JsonErrorResponse(
          connection->parser.error_status(), "ParseError",
          connection->parser.error());
      ++requests_served_;
      connection->output = SerializeHttpResponse(response);
      connection->responded = true;
      FlushWrites(connection);
      return;
    }
  }
}

void HttpListener::FlushWrites(Connection* connection) {
  while (connection->written < connection->output.size()) {
    const ssize_t wrote =
        write(connection->fd, connection->output.data() + connection->written,
              connection->output.size() - connection->written);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Socket buffer full: wait for writability, stop reading.
        loop_->Modify(connection->fd, EPOLLOUT);
        return;
      }
      CloseConnection(connection->fd);
      return;
    }
    connection->written += static_cast<size_t>(wrote);
  }
  // Response fully flushed; close-after-response.
  CloseConnection(connection->fd);
}

void HttpListener::CloseConnection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  loop_->Remove(fd);
  close(fd);
  connections_.erase(it);
}

}  // namespace crowdtruth::server
