#include "server/tenant.h"

#include <cstdlib>
#include <unordered_map>
#include <utility>

#include "obs/span.h"
#include "streaming/registry.h"
#include "util/csv.h"
#include "util/json_writer.h"

namespace crowdtruth::server {

namespace {

// Splits `body` into non-empty lines, tolerating both \n and \r\n.
std::vector<std::string> SplitLines(const std::string& body) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= body.size()) {
    size_t end = body.find('\n', start);
    if (end == std::string::npos) end = body.size();
    std::string line = body.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) lines.push_back(std::move(line));
    if (end == body.size()) break;
    start = end + 1;
  }
  return lines;
}

}  // namespace

std::string IngestResult::ToJson() const {
  util::JsonValue root = util::JsonValue::Object();
  root.Set("accepted", accepted);
  root.Set("dropped", dropped);
  root.Set("duplicates", duplicates);
  root.Set("out_of_range", out_of_range);
  root.Set("parse_errors", parse_errors);
  return root.Dump(0) + "\n";
}

Tenant::Tenant(std::string name, TenantOptions options,
               std::unique_ptr<streaming::CategoricalStreamEngine> engine)
    : name_(std::move(name)), options_(std::move(options)),
      engine_(std::move(engine)) {
  engine_->set_tenant_label(name_);
  resync_interval_ = engine_->config().resync_interval;
  max_dirty_tasks_ = engine_->method().options().max_dirty_tasks;
}

Tenant::Tenant(std::string name, TenantOptions options,
               std::unique_ptr<shard::CategoricalShardCoordinator> coordinator)
    : name_(std::move(name)), options_(std::move(options)),
      coordinator_(std::move(coordinator)) {
  resync_interval_ =
      static_cast<int>(coordinator_->config().barrier_interval);
  max_dirty_tasks_ = options_.max_dirty_tasks;
}

util::Status Tenant::Create(const std::string& name,
                            const TenantOptions& options,
                            std::unique_ptr<Tenant>* out) {
  if (options.num_choices < 2) {
    return util::Status::InvalidArgument(
        "tenant \"" + name + "\": num_choices must be >= 2");
  }
  streaming::StreamingOptions streaming_options;
  streaming_options.local_sweeps = options.local_sweeps;
  streaming_options.max_dirty_tasks = options.max_dirty_tasks;
  streaming_options.batch.seed = options.seed;

  std::unique_ptr<Tenant> tenant;
  if (options.shards > 1) {
    shard::CoordinatorConfig coordinator_config;
    coordinator_config.shard_count = options.shards;
    coordinator_config.method = options.method;
    coordinator_config.num_choices = options.num_choices;
    coordinator_config.options = streaming_options;
    // The tenant's resync cadence becomes the cross-shard barrier cadence.
    coordinator_config.barrier_interval = options.resync_interval;
    coordinator_config.tenant = name;
    std::unique_ptr<shard::CategoricalShardCoordinator> coordinator;
    util::Status status = shard::CategoricalShardCoordinator::Create(
        coordinator_config, &coordinator);
    if (!status.ok()) {
      return util::Status::InvalidArgument("tenant \"" + name + "\": " +
                                           status.message());
    }
    tenant.reset(new Tenant(name, options, std::move(coordinator)));
  } else {
    auto method = streaming::MakeIncrementalCategorical(
        options.method, options.num_choices, streaming_options);
    if (method == nullptr) {
      return util::Status::InvalidArgument(
          "tenant \"" + name + "\": no streaming implementation of \"" +
          options.method + "\"");
    }
    streaming::EngineConfig config;
    config.resync_interval = options.resync_interval;
    auto engine = std::make_unique<streaming::CategoricalStreamEngine>(
        std::move(method), config);
    tenant.reset(new Tenant(name, options, std::move(engine)));
  }

  if (!options.data_dir.empty()) {
    data::AnswerLogHeader header;
    header.type = data::AnswerLogType::kCategorical;
    header.num_choices = options.num_choices;
    tenant->log_path_ = options.data_dir + "/" + name + ".log";
    tenant->log_ = std::make_unique<data::AnswerLogWriter>();
    util::Status status = data::AnswerLogWriter::Create(
        tenant->log_path_, header, tenant->log_.get());
    if (!status.ok()) return status;
  }
  *out = std::move(tenant);
  return util::Status::Ok();
}

std::unique_ptr<Tenant> Tenant::Adopt(
    const std::string& name, const TenantOptions& options,
    std::unique_ptr<streaming::CategoricalStreamEngine> engine) {
  return std::unique_ptr<Tenant>(
      new Tenant(name, options, std::move(engine)));
}

util::Status Tenant::Ingest(const std::string& body, IngestResult* result) {
  obs::Span span("tenant_ingest");
  if (span.armed()) {
    span.Annotate("tenant", name_);
    span.Annotate("body_bytes", static_cast<int64_t>(body.size()));
  }
  const bool reject =
      options_.bad_record_policy == data::BadRecordPolicy::kReject;
  const std::vector<std::string> lines = SplitLines(body);

  // Parse `worker,task,label` rows into the validator's raw-record form.
  // String ids are interned into a *scratch* table scoped to this request:
  // rows the validator drops must not perturb the engine's first-appearance
  // interning order, or the tenant's log replay would diverge.
  std::vector<data::RawCategoricalAnswer> records;
  std::vector<std::pair<std::string, std::string>> id_strings;  // by scratch id
  std::unordered_map<std::string, int> scratch;
  records.reserve(lines.size());
  auto intern = [&](const std::string& worker, const std::string& task) {
    const std::string key = worker + "\x1f" + task;
    const auto it = scratch.find(key);
    if (it != scratch.end()) return it->second;
    const int id = static_cast<int>(id_strings.size());
    scratch.emplace(key, id);
    id_strings.emplace_back(worker, task);
    return id;
  };
  int64_t row_number = 0;
  for (const std::string& line : lines) {
    ++row_number;
    const std::vector<std::string> fields = util::ParseCsvLine(line);
    util::Status parse_error;
    if (fields.size() != 3) {
      parse_error = util::Status::ParseError(
          "ingest row " + std::to_string(row_number) + ": expected "
          "worker,task,label, got " + std::to_string(fields.size()) +
          " fields");
    } else if (fields[0].empty() || fields[1].empty()) {
      parse_error = util::Status::ParseError(
          "ingest row " + std::to_string(row_number) +
          ": empty worker or task id");
    }
    long label = 0;
    if (parse_error.ok()) {
      char* end = nullptr;
      label = std::strtol(fields[2].c_str(), &end, 10);
      if (end == fields[2].c_str() || *end != '\0') {
        parse_error = util::Status::ParseError(
            "ingest row " + std::to_string(row_number) + ": label \"" +
            fields[2] + "\" is not an integer");
      }
    }
    if (!parse_error.ok()) {
      if (reject) return parse_error;
      ++result->parse_errors;
      ++result->dropped;
      continue;
    }
    data::RawCategoricalAnswer record;
    record.row = row_number;
    // The validator keys duplicates on (task, worker); both come from the
    // same scratch pair id so distinct string pairs stay distinct.
    const int pair_id = intern(fields[0], fields[1]);
    record.task = pair_id;
    record.worker = pair_id;
    record.label = static_cast<data::LabelId>(label);
    records.push_back(record);
  }

  // PR-4 record validation under the tenant's policy: catches duplicate
  // pairs *within this request* and out-of-range labels before the engine
  // sees them.
  data::ValidationOptions validation;
  validation.policy = options_.bad_record_policy;
  data::ValidationReport report;
  const size_t before_validation = records.size();
  util::Status status;
  {
    // Scoped so validate_records closes before the engine observes: the
    // observes are siblings under tenant_ingest, not validation children.
    obs::Span validate_span("validate_records");
    if (validate_span.armed()) {
      validate_span.Annotate("records",
                             static_cast<int64_t>(records.size()));
    }
    status = data::ValidateCategoricalRecords(
        "ingest", num_choices(), validation, &records, &report);
  }
  if (!status.ok()) return status;
  result->duplicates += report.duplicate_answers;
  result->out_of_range += report.out_of_range_labels;
  result->dropped +=
      static_cast<int64_t>(before_validation - records.size());

  // Observe survivors in order. The engine still rejects duplicates against
  // *earlier requests* (its answer store is the cross-request state).
  for (const data::RawCategoricalAnswer& record : records) {
    const auto& [worker, task] = id_strings[record.task];
    status = ObserveAnswer(task, worker, record.label);
    if (!status.ok()) {
      const bool duplicate =
          status.message().find("duplicate") != std::string::npos;
      if (reject) return status;
      if (duplicate) ++result->duplicates;
      ++result->dropped;
      continue;
    }
    ++result->accepted;
    if (log_ != nullptr) {
      status = log_->Append(task, worker, record.label);
      if (!status.ok()) return status;
    }
  }
  if (tickets_ >= 0) {
    tickets_ -= result->accepted;
    if (tickets_ < 0) tickets_ = 0;
  }
  total_accepted_ += result->accepted;
  total_dropped_ += result->dropped;
  if (span.armed()) {
    span.Annotate("accepted", result->accepted);
    span.Annotate("dropped", result->dropped);
  }
  return util::Status::Ok();
}

util::Status Tenant::ObserveAnswer(const std::string& task,
                                   const std::string& worker,
                                   data::LabelId label) {
  if (coordinator_ != nullptr) {
    return coordinator_->Observe(task, worker, label);
  }
  return engine_->Observe(task, worker, label);
}

std::string Tenant::method_name() const {
  return engine_ != nullptr ? engine_->method().name()
                            : coordinator_->config().method;
}

int Tenant::num_choices() const {
  return engine_ != nullptr ? engine_->method().num_choices()
                            : coordinator_->config().num_choices;
}

int64_t Tenant::answers_seen() const {
  return engine_ != nullptr ? engine_->stats().answers
                            : coordinator_->answers_accepted();
}

// The serving estimate of one global task of a sharded tenant: the owning
// shard's current (approximate, globally informed) answer. Tasks seen only
// in rejected records have no owner and report label 0, matching a fresh
// engine's default estimate.
namespace {
data::LabelId ShardedEstimate(
    const shard::CategoricalShardCoordinator& coordinator, int gid) {
  const int owner = coordinator.TaskOwner(gid);
  if (owner < 0) return 0;
  return coordinator.engine(owner).method().Estimate(
      coordinator.TaskLocal(gid));
}
}  // namespace

std::string Tenant::TruthCsv() const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"task", "truth"});
  if (coordinator_ != nullptr) {
    for (int gid = 0; gid < coordinator_->global_num_tasks(); ++gid) {
      rows.push_back({coordinator_->tasks().Name(gid),
                      std::to_string(ShardedEstimate(*coordinator_, gid))});
    }
  } else {
    const auto& method = engine_->method();
    for (int t = 0; t < method.num_tasks(); ++t) {
      rows.push_back({engine_->tasks().Name(t),
                      std::to_string(method.Estimate(t))});
    }
  }
  std::string out;
  for (const auto& row : rows) out += util::FormatCsvLine(row) + "\n";
  return out;
}

std::string Tenant::TruthJson() const {
  util::JsonValue root = util::JsonValue::Object();
  root.Set("tenant", name_);
  root.Set("method", method_name());
  root.Set("answers", answers_seen());
  util::JsonValue tasks = util::JsonValue::Array();
  if (coordinator_ != nullptr) {
    int64_t resyncs = 0;
    for (int s = 0; s < coordinator_->shard_count(); ++s) {
      resyncs += coordinator_->engine(s).stats().resyncs;
    }
    root.Set("resyncs", resyncs);
    root.Set("shards", coordinator_->shard_count());
    root.Set("barriers", coordinator_->barriers_run());
    root.Set("num_tasks", coordinator_->global_num_tasks());
    root.Set("num_workers", coordinator_->global_num_workers());
    for (int gid = 0; gid < coordinator_->global_num_tasks(); ++gid) {
      util::JsonValue entry = util::JsonValue::Object();
      entry.Set("task", coordinator_->tasks().Name(gid));
      entry.Set("truth",
                static_cast<int64_t>(ShardedEstimate(*coordinator_, gid)));
      tasks.Append(std::move(entry));
    }
  } else {
    const auto& method = engine_->method();
    root.Set("resyncs", engine_->stats().resyncs);
    root.Set("num_tasks", method.num_tasks());
    root.Set("num_workers", method.num_workers());
    for (int t = 0; t < method.num_tasks(); ++t) {
      util::JsonValue entry = util::JsonValue::Object();
      entry.Set("task", engine_->tasks().Name(t));
      entry.Set("truth", static_cast<int64_t>(method.Estimate(t)));
      tasks.Append(std::move(entry));
    }
  }
  root.Set("tasks", std::move(tasks));
  return root.Dump(2) + "\n";
}

void Tenant::ForceResync() {
  if (coordinator_ != nullptr) {
    if (coordinator_->answers_accepted() > 0) {
      (void)coordinator_->GlobalResync();
    }
    return;
  }
  if (engine_->stats().answers > 0) engine_->Resync();
}

std::string Tenant::SnapshotJson() const {
  if (coordinator_ != nullptr) {
    return coordinator_->MakeCheckpoint().Dump(2) + "\n";
  }
  return engine_->Snapshot().Dump(2) + "\n";
}

bool Tenant::Admit(int64_t records) {
  if (tickets_ < 0) return true;
  return records <= tickets_;
}

void Tenant::Retune(int resync_interval, int max_dirty_tasks) {
  resync_interval_ = resync_interval;
  max_dirty_tasks_ = max_dirty_tasks;
  if (coordinator_ != nullptr) {
    // For a sharded tenant the resync knob drives the barrier cadence;
    // the dirty-task cap still applies per shard engine.
    coordinator_->set_barrier_interval(resync_interval);
    for (int s = 0; s < coordinator_->shard_count(); ++s) {
      coordinator_->engine(s).set_max_dirty_tasks(max_dirty_tasks);
    }
    return;
  }
  engine_->set_resync_interval(resync_interval);
  engine_->set_max_dirty_tasks(max_dirty_tasks);
}

}  // namespace crowdtruth::server
