#include "server/controller.h"

#include <algorithm>
#include <cmath>

namespace crowdtruth::server {

namespace {

// True when the t-digest's p99 exceeds the tail budget. A missing or
// empty digest (p99 < 0) and a disabled factor (<= 0) both mean "no
// veto", which reproduces the pre-digest controller exactly.
bool TailPressure(const TenantSignals& signals,
                  const AdaptiveControllerConfig& config) {
  return config.p99_target_factor > 0 &&
         signals.p99_observe_latency_seconds >= 0 &&
         signals.p99_observe_latency_seconds >
             config.target_latency_seconds * config.p99_target_factor;
}

}  // namespace

const char* ProbeStateName(ProbeState state) {
  switch (state) {
    case ProbeState::kSteady: return "steady";
    case ProbeState::kProbing: return "probing";
    case ProbeState::kBackoff: return "backoff";
  }
  return "unknown";
}

ProbeDecision ProbeStep(ProbeState state, int64_t tickets,
                        const TenantSignals& signals,
                        const AdaptiveControllerConfig& config) {
  ProbeDecision decision;
  decision.tickets = tickets;
  if (signals.mean_observe_latency_seconds < 0) {
    // Idle interval: no evidence either way. Hold the budget; an idle
    // tenant in kBackoff has served its penalty interval, so it may probe
    // again when traffic returns.
    decision.state =
        state == ProbeState::kBackoff ? ProbeState::kSteady : state;
    return decision;
  }
  if (signals.mean_observe_latency_seconds <=
          config.target_latency_seconds &&
      !TailPressure(signals, config)) {
    // Healthy on both the mean and the tail: probe for headroom.
    decision.state = ProbeState::kProbing;
    decision.tickets = static_cast<int64_t>(
        std::ceil(static_cast<double>(tickets) * config.probe_factor));
  } else {
    // Latency regression: back off multiplicatively, then hold one
    // interval (kBackoff -> kSteady) before probing again.
    decision.state = ProbeState::kBackoff;
    decision.tickets = static_cast<int64_t>(
        std::floor(static_cast<double>(tickets) * config.backoff_factor));
  }
  decision.tickets = std::clamp(decision.tickets, config.min_tickets,
                                config.max_tickets);
  return decision;
}

RetuneDecision RetuneStep(int resync_interval, int max_dirty_tasks,
                          int baseline_resync_interval,
                          int baseline_max_dirty_tasks,
                          const TenantSignals& signals,
                          const AdaptiveControllerConfig& config) {
  RetuneDecision decision;
  decision.resync_interval = resync_interval;
  decision.max_dirty_tasks = max_dirty_tasks;
  if (signals.backlog_tasks > config.backlog_high_watermark ||
      TailPressure(signals, config)) {
    // Sweeps are not keeping up (growing backlog, or a p99 blown past the
    // tail budget). Resync more often (a resync clears the backlog
    // wholesale) and let each sweep do more work.
    decision.resync_interval =
        std::max(config.min_resync_interval, resync_interval / 2);
    decision.max_dirty_tasks =
        std::min(config.max_dirty_tasks_limit,
                 std::max(1, max_dirty_tasks) * 2);
  } else if (signals.backlog_tasks == 0) {
    // Drained and the tail is healthy: relax one step per interval back
    // toward the baseline (resyncs are the expensive lever; do not keep
    // paying for a burst that has passed).
    if (resync_interval < baseline_resync_interval) {
      decision.resync_interval =
          std::min(baseline_resync_interval, resync_interval * 2);
    }
    if (max_dirty_tasks > baseline_max_dirty_tasks) {
      decision.max_dirty_tasks =
          std::max(baseline_max_dirty_tasks, max_dirty_tasks / 2);
    }
  }
  decision.changed = decision.resync_interval != resync_interval ||
                     decision.max_dirty_tasks != max_dirty_tasks;
  return decision;
}

AdaptiveController::AdaptiveController(AdaptiveControllerConfig config,
                                       obs::MetricRegistry* registry)
    : config_(config), registry_(registry) {}

ProbeState AdaptiveController::probe_state(const std::string& tenant) const {
  const auto it = states_.find(tenant);
  return it == states_.end() ? ProbeState::kSteady : it->second.state;
}

TenantSignals AdaptiveController::Sample(const Tenant& tenant,
                                         TenantState* state) {
  TenantSignals signals;
  if (registry_ == nullptr) return signals;
  // The engines publish {method, tenant}-labeled series; match on the
  // tenant label (index 1) — one engine per tenant, so the first match is
  // the tenant's series.
  if (obs::Family<obs::Histogram>* family = registry_->FindHistogramFamily(
          "crowdtruth_stream_observe_latency_seconds")) {
    for (const auto& [labels, histogram] : family->Children()) {
      if (labels.size() < 2 || labels[1] != tenant.name()) continue;
      const obs::Histogram::Snapshot snap = histogram->Snap();
      const int64_t count = snap.count - state->last_latency_count;
      const double sum = snap.sum - state->last_latency_sum;
      state->last_latency_count = snap.count;
      state->last_latency_sum = snap.sum;
      if (count > 0) {
        signals.mean_observe_latency_seconds =
            sum / static_cast<double>(count);
      }
      break;
    }
  }
  if (obs::Family<obs::Gauge>* family =
          registry_->FindGaugeFamily("crowdtruth_stream_backlog_tasks")) {
    for (const auto& [labels, gauge] : family->Children()) {
      if (labels.size() < 2 || labels[1] != tenant.name()) continue;
      signals.backlog_tasks = static_cast<int64_t>(gauge->Value());
      break;
    }
  }
  // True tail quantiles from the engine's t-digest twin of the latency
  // histogram; histogram bucket interpolation is too coarse for a p99
  // budget measured in hundreds of microseconds.
  if (obs::Family<obs::Digest>* family = registry_->FindDigestFamily(
          "crowdtruth_stream_observe_latency_digest_seconds")) {
    for (const auto& [labels, digest] : family->Children()) {
      if (labels.size() < 2 || labels[1] != tenant.name()) continue;
      const obs::TDigest snap = digest->Snap();
      if (snap.count() > 0) {
        signals.p50_observe_latency_seconds = snap.Quantile(0.5);
        signals.p90_observe_latency_seconds = snap.Quantile(0.9);
        signals.p99_observe_latency_seconds = snap.Quantile(0.99);
      }
      break;
    }
  }
  return signals;
}

void AdaptiveController::Export(const Tenant& tenant,
                                const TenantState& state,
                                const TenantSignals& signals) {
  if (registry_ == nullptr) return;
  const std::vector<std::string> names = {"tenant"};
  const std::vector<std::string> label = {tenant.name()};
  registry_
      ->AddGaugeFamily("crowdtruth_server_admission_tickets",
                       "Per-tenant answer budget for the current control "
                       "interval.",
                       names)
      .WithLabels(label)
      .Set(static_cast<double>(state.tickets));
  registry_
      ->AddGaugeFamily("crowdtruth_server_resync_interval",
                       "Engine resync_interval as last set by the adaptive "
                       "controller.",
                       names)
      .WithLabels(label)
      .Set(static_cast<double>(tenant.resync_interval()));
  registry_
      ->AddGaugeFamily("crowdtruth_server_max_dirty_tasks",
                       "Engine max_dirty_tasks as last set by the adaptive "
                       "controller.",
                       names)
      .WithLabels(label)
      .Set(static_cast<double>(tenant.max_dirty_tasks()));
  registry_
      ->AddGaugeFamily(
          "crowdtruth_server_probe_state",
          "Admission probe state: 0 steady, 1 probing, 2 backoff.", names)
      .WithLabels(label)
      .Set(static_cast<double>(static_cast<int>(state.state)));
  // Digest quantiles re-exported as gauges: what the controller actually
  // steered on this tick, one series per quantile. Skipped until the
  // tenant's digest has samples (a 0-valued p99 would read as "healthy").
  if (signals.p50_observe_latency_seconds >= 0) {
    obs::Family<obs::Gauge>& family = registry_->AddGaugeFamily(
        "crowdtruth_server_observe_latency_quantile_seconds",
        "Observe-latency quantiles (from the engine t-digest) the "
        "controller last steered on.",
        {"tenant", "quantile"});
    family.WithLabels({tenant.name(), "0.5"})
        .Set(signals.p50_observe_latency_seconds);
    family.WithLabels({tenant.name(), "0.9"})
        .Set(signals.p90_observe_latency_seconds);
    family.WithLabels({tenant.name(), "0.99"})
        .Set(signals.p99_observe_latency_seconds);
  }
}

void AdaptiveController::Tick(const std::vector<Tenant*>& tenants) {
  ++ticks_;
  if (registry_ != nullptr) {
    registry_
        ->AddCounter("crowdtruth_server_controller_ticks_total",
                     "Control intervals the adaptive controller has run.")
        .AdvanceTo(static_cast<double>(ticks_));
  }
  for (Tenant* tenant : tenants) {
    TenantState& state = states_[tenant->name()];
    if (state.tickets == 0) {
      // First sight of this tenant: seed from the config and remember the
      // tenant's configured knobs as the relaxation baseline.
      state.tickets = config_.initial_tickets;
      state.baseline_resync_interval = tenant->resync_interval();
      state.baseline_max_dirty_tasks = tenant->max_dirty_tasks();
    }
    const TenantSignals signals = Sample(*tenant, &state);
    const ProbeDecision probe =
        ProbeStep(state.state, state.tickets, signals, config_);
    state.state = probe.state;
    state.tickets = probe.tickets;
    tenant->GrantTickets(state.tickets);

    const RetuneDecision retune = RetuneStep(
        tenant->resync_interval(), tenant->max_dirty_tasks(),
        state.baseline_resync_interval, state.baseline_max_dirty_tasks,
        signals, config_);
    if (retune.changed) {
      tenant->Retune(retune.resync_interval, retune.max_dirty_tasks);
    }
    Export(*tenant, state, signals);
  }
}

}  // namespace crowdtruth::server
