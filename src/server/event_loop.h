// Epoll event loop for the serving plane.
//
// One thread owns the loop; every registered callback runs on it, so the
// tenants' StreamEngines need no locking — exactly the property that keeps
// streamed inference deterministic (same ingestion order in, same
// estimates out). The loop multiplexes:
//
//   * I/O readiness — non-blocking fds registered with Add()/Modify(),
//     dispatched by fd with a generation stamp so a callback that closes
//     one connection and accepts another on the recycled fd number never
//     receives the stale event;
//   * timers — a classic timer wheel (fixed tick, slotted by deadline,
//     rounds counter for deadlines beyond one revolution) driving the
//     adaptive controller's periodic tick and any delayed work;
//   * shutdown — RequestStop() is one atomic store, safe from a signal
//     handler; the loop re-checks it every wakeup and epoll_wait's EINTR
//     (the signal itself) forces that wakeup immediately.
#ifndef CROWDTRUTH_SERVER_EVENT_LOOP_H_
#define CROWDTRUTH_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace crowdtruth::server {

// Fixed-tick hashed timer wheel. All times are caller-supplied monotonic
// milliseconds (EventLoop::NowMs); the wheel never reads a clock, which
// keeps it deterministic under test.
class TimerWheel {
 public:
  explicit TimerWheel(int64_t tick_ms = 10, int num_slots = 256);

  // Schedules `callback` to fire `delay_ms` after `now_ms`; a positive
  // `period_ms` reschedules it every period after that. Returns an id for
  // Cancel. Delays round up to the next tick (a 0ms delay fires on the
  // next Advance).
  uint64_t Add(int64_t now_ms, int64_t delay_ms, int64_t period_ms,
               std::function<void()> callback);
  // Cancels a pending timer; false when the id is unknown (already fired
  // one-shot, or never existed). Safe to call from inside a callback.
  bool Cancel(uint64_t id);

  // Fires everything due at or before `now_ms`, in tick order.
  void Advance(int64_t now_ms);
  // Milliseconds from `now_ms` until the earliest pending deadline
  // (clamped to >= 0), or -1 when no timer is pending.
  int64_t MsUntilNext(int64_t now_ms) const;

  size_t pending() const { return pending_; }

 private:
  struct Entry {
    uint64_t id = 0;
    int64_t deadline_tick = 0;
    int64_t period_ticks = 0;  // 0 = one-shot
    std::function<void()> callback;
  };

  int64_t TickFor(int64_t at_ms) const;
  void Insert(Entry entry);

  int64_t tick_ms_;
  std::vector<std::vector<Entry>> slots_;
  int64_t current_tick_ = 0;   // last fully processed tick
  bool anchored_ = false;      // current_tick_ initialized from a clock yet?
  uint64_t next_id_ = 1;
  size_t pending_ = 0;
};

// The epoll loop. Not thread-safe except where noted: construct, register
// and run on one thread. RequestStop() alone may be called from other
// threads and from signal handlers.
class EventLoop {
 public:
  using IoCallback = std::function<void(uint32_t epoll_events)>;

  EventLoop() = default;
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  util::Status Init();
  bool initialized() const { return epoll_fd_ >= 0; }

  // Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...). The loop does not
  // own the fd; Remove() before closing it.
  util::Status Add(int fd, uint32_t events, IoCallback callback);
  util::Status Modify(int fd, uint32_t events);
  void Remove(int fd);

  uint64_t AddTimer(int64_t delay_ms, int64_t period_ms,
                    std::function<void()> callback);
  void CancelTimer(uint64_t id);

  // One wait-and-dispatch cycle: waits at most `max_wait_ms` (bounded
  // further by the next timer deadline), dispatches ready I/O, then fires
  // due timers. EINTR returns immediately (so Run can re-check the stop
  // flag). Returns the number of I/O events dispatched.
  int RunOnce(int max_wait_ms = 100);

  // RunOnce until RequestStop(). Clears the stop flag on entry so a loop
  // can be re-run after a previous stop.
  void Run();

  // Async-signal-safe stop request: a single atomic store.
  void RequestStop() { stop_.store(true, std::memory_order_release); }
  bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  // Monotonic milliseconds (CLOCK_MONOTONIC).
  static int64_t NowMs();

 private:
  struct Handler {
    uint64_t generation = 0;
    IoCallback callback;
  };

  int epoll_fd_ = -1;
  std::unordered_map<int, Handler> handlers_;
  uint64_t next_generation_ = 1;
  TimerWheel wheel_;
  std::atomic<bool> stop_{false};
};

}  // namespace crowdtruth::server

#endif  // CROWDTRUTH_SERVER_EVENT_LOOP_H_
