// Adaptive admission control and live engine retuning.
//
// The controller closes a feedback loop over the metric registry: every
// control interval it reads each tenant's Observe-latency histogram and
// backlog gauge (the same series a Prometheus scraper sees on /metrics —
// the control signal IS the observability signal, so operators can replay
// every decision from a scrape), then
//
//   * admission (throughput probing) — each tenant gets a ticket budget of
//     answers per interval. While the interval's mean observe latency stays
//     at or under the target — and the t-digest's p99 stays under
//     target * p99_target_factor — the budget multiplicatively probes
//     upward (there may be headroom); a latency regression on either
//     signal multiplicatively backs it off and holds one interval before
//     re-probing. The classic probe-up/back-off shape used by
//     storage-engine admission controllers, made tail-aware: a healthy
//     mean can hide a degraded tail, so the p99 gets a veto.
//   * retuning — a growing dirty-task backlog, or sustained p99 pressure,
//     means localized sweeps are not keeping up: the controller halves the
//     engine's resync_interval (resyncs clear the backlog wholesale) and
//     doubles max_dirty_tasks. When the backlog drains and the tail
//     recovers it relaxes both knobs back toward the tenant's configured
//     baseline, one step per interval.
//
// The decision functions (ProbeStep, RetuneStep) are pure — state in,
// decision out — so the state machine is unit-testable without a server,
// a clock or a registry.
#ifndef CROWDTRUTH_SERVER_CONTROLLER_H_
#define CROWDTRUTH_SERVER_CONTROLLER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "server/tenant.h"

namespace crowdtruth::server {

struct AdaptiveControllerConfig {
  int64_t interval_ms = 500;
  // Mean per-answer Observe latency the probe steers toward.
  double target_latency_seconds = 200e-6;
  // Ticket budget per interval: start here, probe by *probe_factor while
  // healthy, back off by *backoff_factor on regression, clamp to
  // [min_tickets, max_tickets].
  int64_t initial_tickets = 2000;
  int64_t min_tickets = 100;
  int64_t max_tickets = 1000000;
  double probe_factor = 1.25;
  double backoff_factor = 0.5;
  // Backlog (deferred dirty tasks) above this triggers a retune step.
  int64_t backlog_high_watermark = 256;
  // Clamps for the retuned knobs.
  int min_resync_interval = 50;
  int max_dirty_tasks_limit = 4096;
  // The tail budget: p99 observe latency above
  // target_latency_seconds * p99_target_factor counts as a regression
  // even when the mean looks healthy. <= 0 disables the p99 veto.
  double p99_target_factor = 5.0;
};

enum class ProbeState { kSteady, kProbing, kBackoff };
const char* ProbeStateName(ProbeState state);

// Per-tenant signals sampled from the registry for one interval.
struct TenantSignals {
  // Mean Observe latency over the interval; < 0 = no samples this interval
  // (idle tenant — hold, neither probe nor back off).
  double mean_observe_latency_seconds = -1.0;
  int64_t backlog_tasks = 0;
  // Quantiles of the tenant's observe-latency t-digest. Cumulative over
  // the tenant's lifetime (sketches fold, they do not window), so they
  // move slowly — right for retuning, too smooth for per-interval deltas.
  // < 0 = digest missing or empty (quantile logic disabled this tick).
  double p50_observe_latency_seconds = -1.0;
  double p90_observe_latency_seconds = -1.0;
  double p99_observe_latency_seconds = -1.0;
};

// Admission decision: the next interval's ticket budget.
struct ProbeDecision {
  ProbeState state = ProbeState::kSteady;
  int64_t tickets = 0;
};
ProbeDecision ProbeStep(ProbeState state, int64_t tickets,
                        const TenantSignals& signals,
                        const AdaptiveControllerConfig& config);

// Retune decision: the engine knobs for the next interval. `baseline_*`
// are the tenant's configured values, the relaxation target.
struct RetuneDecision {
  int resync_interval = 0;
  int max_dirty_tasks = 0;
  bool changed = false;
};
RetuneDecision RetuneStep(int resync_interval, int max_dirty_tasks,
                          int baseline_resync_interval,
                          int baseline_max_dirty_tasks,
                          const TenantSignals& signals,
                          const AdaptiveControllerConfig& config);

// The periodic driver. Owned by the server; Tick() runs on the event-loop
// thread (same thread as ingest, so no synchronization with the engines).
class AdaptiveController {
 public:
  AdaptiveController(AdaptiveControllerConfig config,
                     obs::MetricRegistry* registry);

  // Samples the registry, steps both state machines for every tenant, and
  // applies the decisions (GrantTickets / Retune). Exports its own state as
  // crowdtruth_server_* gauges so CI and operators can watch it act.
  void Tick(const std::vector<Tenant*>& tenants);

  const AdaptiveControllerConfig& config() const { return config_; }
  // Visible for tests and the server's status output.
  ProbeState probe_state(const std::string& tenant) const;
  int64_t ticks() const { return ticks_; }

 private:
  struct TenantState {
    ProbeState state = ProbeState::kSteady;
    int64_t tickets = 0;
    int baseline_resync_interval = 0;
    int baseline_max_dirty_tasks = 0;
    // Histogram position at the previous tick, for interval deltas.
    double last_latency_sum = 0.0;
    int64_t last_latency_count = 0;
  };

  TenantSignals Sample(const Tenant& tenant, TenantState* state);
  void Export(const Tenant& tenant, const TenantState& state,
              const TenantSignals& signals);

  AdaptiveControllerConfig config_;
  obs::MetricRegistry* registry_;
  std::map<std::string, TenantState> states_;
  int64_t ticks_ = 0;
};

}  // namespace crowdtruth::server

#endif  // CROWDTRUTH_SERVER_CONTROLLER_H_
