// HTTP listener on an EventLoop: non-blocking accept, per-connection
// incremental request parsing, buffered non-blocking writes, and
// close-after-response connection lifecycle.
//
// The handler runs synchronously on the loop thread — the tenants'
// engines are single-threaded by design, so "handle a request" and
// "advance an engine" are the same serialized timeline. Slow handlers
// therefore delay other connections; the admission controller exists to
// keep per-request work bounded instead of queueing unboundedly.
#ifndef CROWDTRUTH_SERVER_HTTP_SERVER_H_
#define CROWDTRUTH_SERVER_HTTP_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "server/event_loop.h"
#include "server/http.h"
#include "util/status.h"

namespace crowdtruth::server {

class HttpListener {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  // `loop` must outlive the listener. `max_body_bytes` bounds POST bodies
  // (oversized requests answer 413 without buffering the excess).
  HttpListener(EventLoop* loop, Handler handler, size_t max_body_bytes);
  ~HttpListener();
  HttpListener(const HttpListener&) = delete;
  HttpListener& operator=(const HttpListener&) = delete;

  // Binds 127.0.0.1:`port` (0 picks an ephemeral port, reported by
  // port()) and registers with the loop.
  util::Status Listen(int port);
  int port() const { return port_; }
  bool listening() const { return listen_fd_ >= 0; }

  // Closes the listener and every open connection.
  void Close();

  int64_t requests_served() const { return requests_served_; }
  size_t open_connections() const { return connections_.size(); }

 private:
  struct Connection {
    int fd = -1;
    HttpRequestParser parser;
    std::string output;      // serialized response bytes not yet written
    size_t written = 0;
    bool responded = false;

    explicit Connection(size_t max_body_bytes) : parser(max_body_bytes) {}
  };

  void OnAcceptable();
  void OnConnectionEvent(int fd, uint32_t events);
  void ReadAndMaybeRespond(Connection* connection);
  // Writes what the socket will take; closes the connection when the
  // response is fully flushed (or on error).
  void FlushWrites(Connection* connection);
  void CloseConnection(int fd);

  EventLoop* loop_;
  Handler handler_;
  size_t max_body_bytes_;
  int listen_fd_ = -1;
  int port_ = 0;
  int64_t requests_served_ = 0;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
};

}  // namespace crowdtruth::server

#endif  // CROWDTRUTH_SERVER_HTTP_SERVER_H_
