#include "server/event_loop.h"

#include <sys/epoll.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/logging.h"

namespace crowdtruth::server {

TimerWheel::TimerWheel(int64_t tick_ms, int num_slots)
    : tick_ms_(tick_ms), slots_(static_cast<size_t>(num_slots)) {
  CROWDTRUTH_CHECK(tick_ms > 0 && num_slots > 1);
}

int64_t TimerWheel::TickFor(int64_t at_ms) const {
  // Round up: a deadline mid-tick belongs to the tick that ends after it.
  return (at_ms + tick_ms_ - 1) / tick_ms_;
}

void TimerWheel::Insert(Entry entry) {
  const size_t slot = static_cast<size_t>(
      entry.deadline_tick % static_cast<int64_t>(slots_.size()));
  slots_[slot].push_back(std::move(entry));
  ++pending_;
}

uint64_t TimerWheel::Add(int64_t now_ms, int64_t delay_ms, int64_t period_ms,
                         std::function<void()> callback) {
  if (!anchored_) {
    current_tick_ = now_ms / tick_ms_;
    anchored_ = true;
  }
  Entry entry;
  entry.id = next_id_++;
  entry.deadline_tick =
      std::max(TickFor(now_ms + std::max<int64_t>(delay_ms, 0)),
               current_tick_ + 1);
  entry.period_ticks = period_ms > 0 ? std::max<int64_t>(1, period_ms / tick_ms_)
                                     : 0;
  entry.callback = std::move(callback);
  const uint64_t id = entry.id;
  Insert(std::move(entry));
  return id;
}

bool TimerWheel::Cancel(uint64_t id) {
  for (auto& slot : slots_) {
    for (auto it = slot.begin(); it != slot.end(); ++it) {
      if (it->id == id) {
        slot.erase(it);
        --pending_;
        return true;
      }
    }
  }
  return false;
}

void TimerWheel::Advance(int64_t now_ms) {
  if (!anchored_) {
    current_tick_ = now_ms / tick_ms_;
    anchored_ = true;
    return;
  }
  const int64_t target_tick = now_ms / tick_ms_;
  while (current_tick_ < target_tick) {
    ++current_tick_;
    auto& slot =
        slots_[static_cast<size_t>(current_tick_ %
                                   static_cast<int64_t>(slots_.size()))];
    // Entries due this revolution fire; later revolutions stay. Fired
    // callbacks may Add()/Cancel() timers, so collect first, then run.
    std::vector<Entry> due;
    for (auto it = slot.begin(); it != slot.end();) {
      if (it->deadline_tick <= current_tick_) {
        due.push_back(std::move(*it));
        it = slot.erase(it);
        --pending_;
      } else {
        ++it;
      }
    }
    for (Entry& entry : due) {
      entry.callback();
      if (entry.period_ticks > 0) {
        entry.deadline_tick = current_tick_ + entry.period_ticks;
        Insert(std::move(entry));
      }
    }
  }
}

int64_t TimerWheel::MsUntilNext(int64_t now_ms) const {
  int64_t best_tick = -1;
  for (const auto& slot : slots_) {
    for (const Entry& entry : slot) {
      if (best_tick < 0 || entry.deadline_tick < best_tick) {
        best_tick = entry.deadline_tick;
      }
    }
  }
  if (best_tick < 0) return -1;
  return std::max<int64_t>(0, best_tick * tick_ms_ - now_ms);
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

util::Status EventLoop::Init() {
  if (epoll_fd_ >= 0) {
    return util::Status::InvalidArgument("event loop already initialized");
  }
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return util::Status::IoError(std::string("epoll_create1: ") +
                                 std::strerror(errno));
  }
  return util::Status::Ok();
}

util::Status EventLoop::Add(int fd, uint32_t events, IoCallback callback) {
  CROWDTRUTH_CHECK(epoll_fd_ >= 0);
  const uint64_t generation = next_generation_++;
  epoll_event event{};
  event.events = events;
  event.data.u64 = (generation << 32) | static_cast<uint32_t>(fd);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    return util::Status::IoError(std::string("epoll_ctl(ADD): ") +
                                 std::strerror(errno));
  }
  handlers_[fd] = Handler{generation, std::move(callback)};
  return util::Status::Ok();
}

util::Status EventLoop::Modify(int fd, uint32_t events) {
  const auto it = handlers_.find(fd);
  if (it == handlers_.end()) {
    return util::Status::InvalidArgument("fd not registered");
  }
  epoll_event event{};
  event.events = events;
  event.data.u64 =
      (it->second.generation << 32) | static_cast<uint32_t>(fd);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
    return util::Status::IoError(std::string("epoll_ctl(MOD): ") +
                                 std::strerror(errno));
  }
  return util::Status::Ok();
}

void EventLoop::Remove(int fd) {
  if (handlers_.erase(fd) > 0 && epoll_fd_ >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

uint64_t EventLoop::AddTimer(int64_t delay_ms, int64_t period_ms,
                             std::function<void()> callback) {
  return wheel_.Add(NowMs(), delay_ms, period_ms, std::move(callback));
}

void EventLoop::CancelTimer(uint64_t id) { wheel_.Cancel(id); }

int64_t EventLoop::NowMs() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

int EventLoop::RunOnce(int max_wait_ms) {
  CROWDTRUTH_CHECK(epoll_fd_ >= 0);
  int64_t wait = max_wait_ms;
  const int64_t until_timer = wheel_.MsUntilNext(NowMs());
  if (until_timer >= 0) wait = std::min<int64_t>(wait, until_timer);
  wait = std::max<int64_t>(wait, 0);

  epoll_event events[64];
  const int ready = epoll_wait(epoll_fd_, events, 64,
                               static_cast<int>(wait));
  int dispatched = 0;
  if (ready > 0) {
    for (int i = 0; i < ready; ++i) {
      const int fd = static_cast<int>(events[i].data.u64 & 0xffffffffu);
      const uint64_t generation = events[i].data.u64 >> 32;
      const auto it = handlers_.find(fd);
      // The fd may have been removed (and its number recycled) by an
      // earlier callback in this very batch; the generation stamp makes
      // that case detectable instead of silently misdelivered.
      if (it == handlers_.end() || it->second.generation != generation) {
        continue;
      }
      // Copy: the callback may Remove(fd) and invalidate the map entry.
      const IoCallback callback = it->second.callback;
      callback(events[i].events);
      ++dispatched;
    }
  }
  // ready < 0 is EINTR (or a transient error): fall through so the caller
  // re-checks its stop flag; timers still advance.
  wheel_.Advance(NowMs());
  return dispatched;
}

void EventLoop::Run() {
  stop_.store(false, std::memory_order_release);
  while (!stop_requested()) {
    RunOnce(100);
  }
}

}  // namespace crowdtruth::server
