#include "server/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <limits>

namespace crowdtruth::server {

namespace {

constexpr size_t kMaxHeaderBytes = 64 * 1024;

// Headers where a second copy changes message framing or routing — a
// request-smuggling vector, not a list (RFC 7230 §3.2.2). A duplicate is
// rejected outright; all other repeated headers merge into one
// comma-separated field value.
bool IsSingletonHeader(const std::string& lower_name) {
  return lower_name == "content-length" ||
         lower_name == "transfer-encoding" || lower_name == "host";
}

// Strict RFC 7230 Content-Length: 1*DIGIT, nothing else. strtoull (the
// previous parser) also accepted leading whitespace, "+"/"-" signs and
// locale surprises — each one a way for two implementations to disagree
// about where the body ends.
bool ParseContentLength(const std::string& text, unsigned long long* out) {
  if (text.empty()) return false;
  unsigned long long value = 0;
  constexpr unsigned long long kMax =
      std::numeric_limits<unsigned long long>::max();
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const unsigned long long digit = static_cast<unsigned long long>(c - '0');
    if (value > (kMax - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

std::string ToLower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return text;
}

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// %xx and '+' decoding for query components.
std::string UrlDecode(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '+') {
      out += ' ';
    } else if (text[i] == '%' && i + 2 < text.size() &&
               HexDigit(text[i + 1]) >= 0 && HexDigit(text[i + 2]) >= 0) {
      out += static_cast<char>(HexDigit(text[i + 1]) * 16 +
                               HexDigit(text[i + 2]));
      i += 2;
    } else {
      out += text[i];
    }
  }
  return out;
}

void ParseQuery(const std::string& text,
                std::map<std::string, std::string>* query) {
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('&', start);
    if (end == std::string::npos) end = text.size();
    const std::string pair = text.substr(start, end - start);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        (*query)[UrlDecode(pair)] = "";
      } else {
        (*query)[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
      }
    }
    if (end == text.size()) break;
    start = end + 1;
  }
}

}  // namespace

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpStatusReason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

HttpResponse JsonErrorResponse(int status, const std::string& code,
                               const std::string& message) {
  std::string escaped;
  escaped.reserve(message.size());
  for (const char c : message) {
    switch (c) {
      case '\\': escaped += "\\\\"; break;
      case '"': escaped += "\\\""; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) break;  // drop controls
        escaped += c;
    }
  }
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body =
      "{\"error\": \"" + code + "\", \"message\": \"" + escaped + "\"}\n";
  return response;
}

HttpRequestParser::State HttpRequestParser::Fail(int status,
                                                 const std::string& message) {
  state_ = State::kError;
  error_status_ = status;
  error_ = message;
  return state_;
}

HttpRequestParser::State HttpRequestParser::ParseHeaderBlock(
    size_t header_end, size_t separator_size) {
  const std::string head = buffer_.substr(0, header_end);
  size_t line_end = head.find_first_of("\r\n");
  if (line_end == std::string::npos) line_end = head.size();
  const std::string request_line = head.substr(0, line_end);

  const size_t method_end = request_line.find(' ');
  if (method_end == std::string::npos || method_end == 0) {
    return Fail(400, "malformed request line");
  }
  request_.method = request_line.substr(0, method_end);
  size_t target_end = request_line.find(' ', method_end + 1);
  if (target_end == std::string::npos) target_end = request_line.size();
  std::string target =
      request_line.substr(method_end + 1, target_end - method_end - 1);
  if (target.empty() || target[0] != '/') {
    return Fail(400, "malformed request target");
  }
  const size_t query = target.find('?');
  if (query != std::string::npos) {
    ParseQuery(target.substr(query + 1), &request_.query);
    target.resize(query);
  }
  request_.path = target;

  // Header fields: "Name: value", one per line; continuations unsupported.
  size_t cursor = line_end;
  while (cursor < head.size()) {
    // Skip the line terminator(s) of the previous line.
    while (cursor < head.size() &&
           (head[cursor] == '\r' || head[cursor] == '\n')) {
      ++cursor;
    }
    if (cursor >= head.size()) break;
    size_t end = head.find_first_of("\r\n", cursor);
    if (end == std::string::npos) end = head.size();
    const std::string line = head.substr(cursor, end - cursor);
    cursor = end;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Fail(400, "malformed header line");
    }
    const std::string name = ToLower(Trim(line.substr(0, colon)));
    if (name.empty()) return Fail(400, "malformed header line");
    const std::string value = Trim(line.substr(colon + 1));
    const auto [it, inserted] = request_.headers.emplace(name, value);
    if (!inserted) {
      // Last-wins overwrite here let a second conflicting Content-Length
      // silently replace the first.
      if (IsSingletonHeader(name)) {
        return Fail(400, "duplicate " + name + " header");
      }
      it->second += ", " + value;
    }
  }

  body_expected_ = 0;
  const auto length = request_.headers.find("content-length");
  if (length != request_.headers.end()) {
    unsigned long long parsed = 0;
    if (!ParseContentLength(length->second, &parsed)) {
      return Fail(400, "malformed Content-Length");
    }
    if (parsed > max_body_bytes_) {
      return Fail(413, "request body exceeds " +
                           std::to_string(max_body_bytes_) + " bytes");
    }
    body_expected_ = static_cast<size_t>(parsed);
  }
  if (request_.headers.count("transfer-encoding") > 0) {
    return Fail(400, "chunked transfer encoding is not supported");
  }

  buffer_.erase(0, header_end + separator_size);
  state_ = State::kBody;
  return FinishIfBodyComplete();
}

HttpRequestParser::State HttpRequestParser::FinishIfBodyComplete() {
  if (buffer_.size() < body_expected_) return state_;
  request_.body = buffer_.substr(0, body_expected_);
  // Trailing bytes beyond Content-Length are pipelining we do not support;
  // close-after-response makes ignoring them safe.
  state_ = State::kDone;
  return state_;
}

HttpRequestParser::State HttpRequestParser::Feed(const char* data,
                                                 size_t size) {
  if (state_ == State::kDone || state_ == State::kError) return state_;
  buffer_.append(data, size);
  if (state_ == State::kBody) return FinishIfBodyComplete();

  const size_t crlf = buffer_.find("\r\n\r\n");
  if (crlf != std::string::npos) return ParseHeaderBlock(crlf, 4);
  const size_t lf = buffer_.find("\n\n");
  if (lf != std::string::npos) return ParseHeaderBlock(lf, 2);
  if (buffer_.size() > kMaxHeaderBytes) {
    return Fail(431, "request header block exceeds " +
                         std::to_string(kMaxHeaderBytes) + " bytes");
  }
  return state_;
}

}  // namespace crowdtruth::server
