#include "server/server.h"

#include <cstdlib>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "util/json_writer.h"
#include "util/stopwatch.h"

namespace crowdtruth::server {

namespace {

// Splits "/v1/tenants/<name>/<verb>" into its trailing segments. Returns
// false when the path is not under /v1/tenants/.
bool SplitTenantPath(const std::string& path, std::string* name,
                     std::string* verb) {
  const std::string prefix = "/v1/tenants/";
  if (path.compare(0, prefix.size(), prefix) != 0) return false;
  const std::string rest = path.substr(prefix.size());
  const size_t slash = rest.find('/');
  if (slash == std::string::npos) {
    *name = rest;
    verb->clear();
  } else {
    *name = rest.substr(0, slash);
    *verb = rest.substr(slash + 1);
  }
  return true;
}

// Coarse per-handler label for the request-duration digest and the
// http_request span: paths embed tenant ids, so the raw path is never a
// label value.
const char* RouteLabel(const HttpRequest& request) {
  if (request.path == "/healthz") return "healthz";
  if (request.path == "/metrics") return "metrics";
  if (request.path == "/metrics.json") return "metrics_json";
  if (request.path == "/debug/trace") return "debug_trace";
  if (request.path == "/v1/tenants") return "tenants";
  std::string name;
  std::string verb;
  if (SplitTenantPath(request.path, &name, &verb)) {
    if (verb == "answers") return "ingest";
    if (verb == "truth") return "truth";
    if (verb == "snapshot") return "snapshot";
    return "tenants";
  }
  return "other";
}

}  // namespace

HttpResponse StatusToHttp(const util::Status& status) {
  int http = 500;
  switch (status.code()) {
    case util::StatusCode::kParseError:
    case util::StatusCode::kInvalidArgument:
      http = 400;
      break;
    case util::StatusCode::kValidationError:
      http = 422;
      break;
    case util::StatusCode::kNotFound:
      http = 404;
      break;
    case util::StatusCode::kIoError:
    case util::StatusCode::kOk:
      http = 500;
      break;
  }
  return JsonErrorResponse(http, util::StatusCodeName(status.code()),
                           status.message());
}

bool ValidTenantName(const std::string& name) {
  if (name.empty() || name.size() > 64 || name[0] == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

StreamingServer::StreamingServer(ServerConfig config,
                                 obs::MetricRegistry* registry)
    : config_(std::move(config)), registry_(registry),
      controller_(config_.controller, registry) {}

StreamingServer::~StreamingServer() { Stop(); }

util::Status StreamingServer::Start() {
  util::Status status = loop_.Init();
  if (!status.ok()) return status;
  if (registry_ != nullptr && config_.tenant_label_cap > 0) {
    registry_->SetLabelCardinalityCap("tenant", config_.tenant_label_cap);
  }
  listener_ = std::make_unique<HttpListener>(
      &loop_,
      [this](const HttpRequest& request) { return Handle(request); },
      config_.max_body_bytes);
  status = listener_->Listen(config_.port);
  if (!status.ok()) return status;
  if (config_.controller_enabled) {
    controller_timer_ = loop_.AddTimer(
        config_.controller.interval_ms, config_.controller.interval_ms,
        [this]() { controller_.Tick(Tenants()); });
  }
  return util::Status::Ok();
}

void StreamingServer::Stop() {
  if (controller_timer_ != 0) {
    loop_.CancelTimer(controller_timer_);
    controller_timer_ = 0;
  }
  if (listener_ != nullptr) {
    listener_->Close();
    listener_.reset();
  }
}

util::Status StreamingServer::AddTenant(std::unique_ptr<Tenant> tenant) {
  const std::string& name = tenant->name();
  if (!ValidTenantName(name)) {
    return util::Status::InvalidArgument("invalid tenant name \"" + name +
                                         "\"");
  }
  if (tenants_.count(name) > 0) {
    return util::Status::InvalidArgument("tenant \"" + name +
                                         "\" already exists");
  }
  tenants_[name] = std::move(tenant);
  return util::Status::Ok();
}

Tenant* StreamingServer::FindTenant(const std::string& name) {
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

std::vector<Tenant*> StreamingServer::Tenants() {
  std::vector<Tenant*> out;
  out.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) out.push_back(tenant.get());
  return out;
}

void StreamingServer::CountRequest(int status) {
  if (registry_ == nullptr) return;
  registry_
      ->AddCounterFamily("crowdtruth_server_requests_total",
                         "HTTP requests handled, by status code.",
                         {"status"})
      .WithLabels({std::to_string(status)})
      .Increment();
}

void StreamingServer::ObserveRequest(const char* route, double seconds) {
  if (registry_ == nullptr) return;
  registry_
      ->AddDigestFamily("crowdtruth_server_request_duration_seconds",
                        "T-digest sketch of request handling time per "
                        "coarse route.",
                        {"route"}, obs::DigestOptions())
      .WithLabels({route})
      .Observe(seconds);
}

util::Status StreamingServer::ResolveTenant(const HttpRequest& request,
                                            const std::string& name,
                                            bool create, Tenant** out) {
  if (!ValidTenantName(name)) {
    return util::Status::InvalidArgument(
        "tenant names are 1-64 chars of [A-Za-z0-9._-], got \"" + name +
        "\"");
  }
  *out = FindTenant(name);
  if (*out != nullptr) return util::Status::Ok();
  if (!create) {
    return util::Status::NotFound("no tenant \"" + name + "\"");
  }
  // Auto-create on first ingest, with creation-time overrides from the
  // query string.
  TenantOptions options = config_.tenant_defaults;
  const auto method = request.query.find("method");
  if (method != request.query.end()) options.method = method->second;
  const auto choices = request.query.find("num_choices");
  if (choices != request.query.end()) {
    char* end = nullptr;
    const long parsed = std::strtol(choices->second.c_str(), &end, 10);
    if (end == choices->second.c_str() || *end != '\0') {
      return util::Status::InvalidArgument("num_choices \"" +
                                           choices->second +
                                           "\" is not an integer");
    }
    options.num_choices = static_cast<int>(parsed);
  }
  const auto shards = request.query.find("shards");
  if (shards != request.query.end()) {
    char* end = nullptr;
    const long parsed = std::strtol(shards->second.c_str(), &end, 10);
    if (end == shards->second.c_str() || *end != '\0' || parsed < 1) {
      return util::Status::InvalidArgument(
          "shards \"" + shards->second + "\" is not a positive integer");
    }
    options.shards = static_cast<int>(parsed);
  }
  const auto policy = request.query.find("on_bad_record");
  if (policy != request.query.end()) {
    util::Status status = data::ParseBadRecordPolicy(
        policy->second, &options.bad_record_policy);
    if (!status.ok()) return status;
  }
  std::unique_ptr<Tenant> tenant;
  util::Status status = Tenant::Create(name, options, &tenant);
  if (!status.ok()) return status;
  *out = tenant.get();
  tenants_[name] = std::move(tenant);
  return util::Status::Ok();
}

HttpResponse StreamingServer::HandleIngest(const HttpRequest& request,
                                           const std::string& name) {
  Tenant* tenant = nullptr;
  util::Status status = ResolveTenant(request, name, /*create=*/true,
                                      &tenant);
  if (!status.ok()) return StatusToHttp(status);

  // Admission: a request larger than the tenant's remaining ticket budget
  // is shed whole — a half-applied batch would make the answer log replay
  // ambiguous.
  int64_t lines = 0;
  for (const char c : request.body) lines += c == '\n' ? 1 : 0;
  if (!request.body.empty() && request.body.back() != '\n') ++lines;
  if (!tenant->Admit(lines)) {
    tenant->CountShed(lines);
    if (registry_ != nullptr) {
      registry_
          ->AddCounterFamily("crowdtruth_server_shed_answers_total",
                             "Answers rejected by admission control.",
                             {"tenant"})
          .WithLabels({tenant->name()})
          .Increment(static_cast<double>(lines));
    }
    HttpResponse response = JsonErrorResponse(
        429, "AdmissionLimit",
        "tenant \"" + name + "\" is over its admission budget (" +
            std::to_string(tenant->tickets()) + " answers left this "
            "interval); retry after the next control interval");
    response.headers.emplace_back(
        "Retry-After",
        std::to_string(
            std::max<int64_t>(1, config_.controller.interval_ms / 1000)));
    return response;
  }

  IngestResult result;
  status = tenant->Ingest(request.body, &result);
  if (!status.ok()) return StatusToHttp(status);
  HttpResponse response;
  response.status = 200;
  response.content_type = "application/json";
  response.body = result.ToJson();
  return response;
}

HttpResponse StreamingServer::HandleTruth(const HttpRequest& request,
                                          Tenant* tenant) {
  const auto resync = request.query.find("resync");
  if (resync != request.query.end() && resync->second != "0" &&
      resync->second != "false") {
    tenant->ForceResync();
  }
  const auto format = request.query.find("format");
  HttpResponse response;
  if (format != request.query.end() && format->second == "json") {
    response.content_type = "application/json";
    response.body = tenant->TruthJson();
  } else {
    response.content_type = "text/csv";
    response.body = tenant->TruthCsv();
  }
  return response;
}

HttpResponse StreamingServer::HandleSnapshot(Tenant* tenant) {
  HttpResponse response;
  response.content_type = "application/json";
  response.body = tenant->SnapshotJson();
  return response;
}

HttpResponse StreamingServer::HandleTenants(const HttpRequest& request) {
  std::string name;
  std::string verb;
  if (request.path != "/v1/tenants" &&
      !SplitTenantPath(request.path, &name, &verb)) {
    return JsonErrorResponse(404, "NotFound",
                             "no route for " + request.path);
  }
  if (name.empty()) {
    // GET /v1/tenants — the listing.
    util::JsonValue root = util::JsonValue::Object();
    util::JsonValue list = util::JsonValue::Array();
    for (Tenant* tenant : Tenants()) {
      util::JsonValue entry = util::JsonValue::Object();
      entry.Set("tenant", tenant->name());
      entry.Set("method", tenant->method_name());
      entry.Set("shards",
                tenant->sharded() ? tenant->coordinator().shard_count() : 1);
      entry.Set("answers", tenant->answers_seen());
      entry.Set("accepted", tenant->total_accepted());
      entry.Set("dropped", tenant->total_dropped());
      entry.Set("shed", tenant->total_shed());
      entry.Set("tickets", tenant->tickets());
      entry.Set("resync_interval", tenant->resync_interval());
      entry.Set("max_dirty_tasks", tenant->max_dirty_tasks());
      entry.Set("probe_state",
                ProbeStateName(controller_.probe_state(tenant->name())));
      list.Append(std::move(entry));
    }
    root.Set("tenants", std::move(list));
    HttpResponse response;
    response.content_type = "application/json";
    response.body = root.Dump(2) + "\n";
    return response;
  }

  if (verb == "answers" && request.method == "POST") {
    return HandleIngest(request, name);
  }
  // The remaining verbs operate on existing tenants only.
  Tenant* tenant = nullptr;
  const util::Status status =
      ResolveTenant(request, name, /*create=*/false, &tenant);
  if (!status.ok()) return StatusToHttp(status);
  if (verb == "truth" && request.method == "GET") {
    return HandleTruth(request, tenant);
  }
  if (verb == "snapshot" && request.method == "POST") {
    return HandleSnapshot(tenant);
  }
  if (verb == "answers" || verb == "truth" || verb == "snapshot") {
    return JsonErrorResponse(405, "MethodNotAllowed",
                             request.method + " is not supported on " +
                                 request.path);
  }
  return JsonErrorResponse(404, "NotFound", "no route for " + request.path);
}

HttpResponse StreamingServer::Handle(const HttpRequest& request) {
  const char* const route = RouteLabel(request);
  obs::Span span("http_request");
  if (span.armed()) {
    span.Annotate("route", std::string(route));
    span.Annotate("path", request.path);
    span.Annotate("http_method", request.method);
  }
  util::Stopwatch stopwatch;
  HttpResponse response;
  if (request.path == "/healthz") {
    response.body = "ok\n";
  } else if (request.path == "/metrics") {
    if (registry_ != nullptr) {
      response.content_type = "text/plain; version=0.0.4";
      response.body = registry_->PrometheusText();
    }
  } else if (request.path == "/metrics.json") {
    response.content_type = "application/json";
    response.body =
        registry_ != nullptr ? registry_->ToJson().Dump(2) + "\n" : "{}\n";
  } else if (request.path == "/debug/trace") {
    // Dumps what the recorder holds *now*; this request's own span is
    // still open, so it shows up in the next dump, not this one.
    obs::FlightRecorder* const recorder = obs::ProcessFlightRecorder();
    if (recorder == nullptr) {
      response = JsonErrorResponse(404, "NotFound",
                                   "no flight recorder installed");
    } else {
      response.content_type = "application/json";
      response.body = obs::TraceJsonText(*recorder);
    }
  } else if (request.path.compare(0, 12, "/v1/tenants/") == 0 ||
             request.path == "/v1/tenants") {
    response = HandleTenants(request);
  } else {
    response =
        JsonErrorResponse(404, "NotFound", "no route for " + request.path);
  }
  CountRequest(response.status);
  ObserveRequest(route, stopwatch.ElapsedSeconds());
  if (span.armed()) span.Annotate("status", int64_t{response.status});
  return response;
}

}  // namespace crowdtruth::server
