#include "data/multiple_choice.h"

#include "util/logging.h"

namespace crowdtruth::data {

CategoricalDataset ExpandMultipleChoice(
    int num_tasks, int num_workers, int num_choices,
    const std::vector<MultipleChoiceAnswer>& answers,
    const std::vector<std::vector<bool>>& truth) {
  CROWDTRUTH_CHECK_GT(num_choices, 0);
  CategoricalDatasetBuilder builder(num_tasks * num_choices, num_workers, 2);
  builder.set_name("multiple_choice_expanded");
  for (const MultipleChoiceAnswer& answer : answers) {
    CROWDTRUTH_CHECK_GE(answer.task, 0);
    CROWDTRUTH_CHECK_LT(answer.task, num_tasks);
    CROWDTRUTH_CHECK_EQ(static_cast<int>(answer.selected.size()),
                        num_choices);
    for (int k = 0; k < num_choices; ++k) {
      builder.AddAnswer(answer.task * num_choices + k, answer.worker,
                        answer.selected[k] ? kSelected : kNotSelected);
    }
  }
  if (!truth.empty()) {
    CROWDTRUTH_CHECK_EQ(static_cast<int>(truth.size()), num_tasks);
    for (int t = 0; t < num_tasks; ++t) {
      CROWDTRUTH_CHECK_EQ(static_cast<int>(truth[t].size()), num_choices);
      for (int k = 0; k < num_choices; ++k) {
        builder.SetTruth(t * num_choices + k,
                         truth[t][k] ? kSelected : kNotSelected);
      }
    }
  }
  return std::move(builder).Build();
}

std::vector<std::vector<bool>> FoldMultipleChoice(
    const std::vector<LabelId>& expanded_labels, int num_tasks,
    int num_choices) {
  CROWDTRUTH_CHECK_EQ(static_cast<int>(expanded_labels.size()),
                      num_tasks * num_choices);
  std::vector<std::vector<bool>> selected(
      num_tasks, std::vector<bool>(num_choices, false));
  for (int t = 0; t < num_tasks; ++t) {
    for (int k = 0; k < num_choices; ++k) {
      selected[t][k] = expanded_labels[t * num_choices + k] == kSelected;
    }
  }
  return selected;
}

}  // namespace crowdtruth::data
