// Multiple-choice task support (paper §2, citing [60, 38]): a
// multiple-choice task — "select every tag that applies" — is transformed
// into one decision-making task per (task, choice) pair, so that all the
// decision-making methods apply directly. This module implements that
// transformation and its inverse.
#ifndef CROWDTRUTH_DATA_MULTIPLE_CHOICE_H_
#define CROWDTRUTH_DATA_MULTIPLE_CHOICE_H_

#include <vector>

#include "data/dataset.h"

namespace crowdtruth::data {

// One worker's answer to a multiple-choice task: the subset of choices the
// worker selected. `selected` has one entry per choice.
struct MultipleChoiceAnswer {
  TaskId task;
  WorkerId worker;
  std::vector<bool> selected;
};

// In the expanded dataset, label 0 means "choice is selected / applies"
// (the positive class) and label 1 means "not selected".
inline constexpr LabelId kSelected = 0;
inline constexpr LabelId kNotSelected = 1;

// Expands a multiple-choice problem into num_tasks * num_choices binary
// decision-making tasks. Expanded task id = task * num_choices + choice.
// `truth` may be empty (no ground truth) or have one entry per task with
// one flag per choice.
CategoricalDataset ExpandMultipleChoice(
    int num_tasks, int num_workers, int num_choices,
    const std::vector<MultipleChoiceAnswer>& answers,
    const std::vector<std::vector<bool>>& truth);

// Folds per-binary-task labels (from any CategoricalMethod run on the
// expanded dataset) back into per-task selected-choice sets.
std::vector<std::vector<bool>> FoldMultipleChoice(
    const std::vector<LabelId>& expanded_labels, int num_tasks,
    int num_choices);

}  // namespace crowdtruth::data

#endif  // CROWDTRUTH_DATA_MULTIPLE_CHOICE_H_
