// Core data model (paper §2): tasks, workers, answers, and optional ground
// truth.
//
// Two dataset flavours mirror the paper's task taxonomy:
//   * CategoricalDataset — decision-making (l = 2) and single-choice
//     (l > 2) tasks; answers are label ids in [0, num_choices).
//   * NumericDataset — numeric tasks; answers are real values.
//
// Both keep the sparse answer set V = {v_i^w} indexed two ways, matching the
// paper's notation: by task (W_i, the workers answering task t_i) and by
// worker (T^w, the tasks answered by worker w). Ground truth may cover only
// a subset of tasks (as in S_Rel / S_Adult, Table 5); metrics are computed
// over the labeled subset while inference always uses all answers.
#ifndef CROWDTRUTH_DATA_DATASET_H_
#define CROWDTRUTH_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

namespace crowdtruth::data {

using TaskId = int;
using WorkerId = int;
using LabelId = int;

inline constexpr LabelId kNoTruth = -1;

// One answer as seen from a task's perspective.
struct TaskVote {
  WorkerId worker;
  LabelId label;
};

// One answer as seen from a worker's perspective.
struct WorkerVote {
  TaskId task;
  LabelId label;
};

struct NumericTaskVote {
  WorkerId worker;
  double value;
};

struct NumericWorkerVote {
  TaskId task;
  double value;
};

// Flat CSR (compressed sparse row) view over the answer adjacency, in SoA
// form: one contiguous array per field instead of an array of small vote
// structs behind a per-row pointer. The iterative kernels (core/em_loop.h
// and everything built on it) stream these arrays in their inner loops —
// the layout removes the per-row pointer chase of AnswersForTask /
// AnswersByWorker and gives the autovectorizer unit-stride loads (see
// docs/performance.md).
//
// Order contract: the answers of row r occupy [offsets[r], offsets[r + 1])
// and appear in exactly the order the corresponding AnswersForTask /
// AnswersByWorker list stores them. A kernel may therefore switch between
// the list view and the CSR view without changing its floating-point
// reduction order — the basis of the bit-identical-goldens policy.
struct CategoricalCsr {
  // Task-major: answers of task t at [task_offsets[t], task_offsets[t+1]).
  std::vector<int32_t> task_offsets;  // num_tasks + 1
  std::vector<int32_t> task_workers;  // |V|
  std::vector<int32_t> task_labels;   // |V|
  // Worker-major (transposed view): answers of worker w at
  // [worker_offsets[w], worker_offsets[w+1]).
  std::vector<int32_t> worker_offsets;  // num_workers + 1
  std::vector<int32_t> worker_tasks;    // |V|
  std::vector<int32_t> worker_labels;   // |V|
  // Cross-link: worker_to_task[a] is the task-major position of the answer
  // stored at worker-major position a. Lets a kernel compute a per-answer
  // quantity once in one orientation and read it from the other (GLAD's
  // per-answer sigmoids) without recomputing or re-deriving indices.
  std::vector<int32_t> worker_to_task;  // |V|

  int num_answers() const { return static_cast<int>(task_workers.size()); }
};

// Numeric twin of CategoricalCsr; values replace label ids.
struct NumericCsr {
  std::vector<int32_t> task_offsets;
  std::vector<int32_t> task_workers;
  std::vector<double> task_values;
  std::vector<int32_t> worker_offsets;
  std::vector<int32_t> worker_tasks;
  std::vector<double> worker_values;
  std::vector<int32_t> worker_to_task;

  int num_answers() const { return static_cast<int>(task_workers.size()); }
};

// Immutable categorical dataset. Build with CategoricalDatasetBuilder.
class CategoricalDataset {
 public:
  CategoricalDataset() = default;

  const std::string& name() const { return name_; }
  int num_tasks() const { return static_cast<int>(by_task_.size()); }
  int num_workers() const { return static_cast<int>(by_worker_.size()); }
  int num_choices() const { return num_choices_; }
  int num_answers() const { return num_answers_; }

  // W_i: answers received by task `task`.
  const std::vector<TaskVote>& AnswersForTask(TaskId task) const {
    return by_task_[task];
  }
  // T^w: answers given by worker `worker`.
  const std::vector<WorkerVote>& AnswersByWorker(WorkerId worker) const {
    return by_worker_[worker];
  }

  // Contiguous SoA view over the same answers; built once at Build() time.
  const CategoricalCsr& csr() const { return csr_; }

  bool HasTruth(TaskId task) const { return truth_[task] != kNoTruth; }
  LabelId Truth(TaskId task) const { return truth_[task]; }
  int num_labeled_tasks() const { return num_labeled_; }

  // Average answers per task, |V|/n — the "data redundancy" of Table 5.
  double Redundancy() const {
    return num_tasks() == 0
               ? 0.0
               : static_cast<double>(num_answers_) / num_tasks();
  }

 private:
  friend class CategoricalDatasetBuilder;

  std::string name_;
  int num_choices_ = 0;
  int num_answers_ = 0;
  int num_labeled_ = 0;
  std::vector<std::vector<TaskVote>> by_task_;
  std::vector<std::vector<WorkerVote>> by_worker_;
  CategoricalCsr csr_;
  std::vector<LabelId> truth_;
};

// Mutable builder; Build() validates and freezes.
class CategoricalDatasetBuilder {
 public:
  CategoricalDatasetBuilder(int num_tasks, int num_workers, int num_choices);

  void set_name(std::string name) { name_ = std::move(name); }

  // Records worker's answer for task. Duplicate (task, worker) pairs are
  // rejected at Build() time.
  void AddAnswer(TaskId task, WorkerId worker, LabelId label);

  void SetTruth(TaskId task, LabelId truth);

  // Validating build for file-derived data: duplicate (task, worker) pairs
  // are reported as a ValidationError Status instead of aborting. On error
  // `*out` is untouched.
  util::Status TryBuild(CategoricalDataset* out) &&;

  // Build for programmatically constructed data (tests, simulation), where
  // a duplicate answer is a programming error: aborts via CHECK.
  CategoricalDataset Build() &&;

 private:
  std::string name_;
  int num_tasks_;
  int num_workers_;
  int num_choices_;
  std::vector<std::vector<TaskVote>> by_task_;
  std::vector<std::vector<WorkerVote>> by_worker_;
  std::vector<LabelId> truth_;
};

// Immutable numeric dataset. Build with NumericDatasetBuilder.
class NumericDataset {
 public:
  NumericDataset() = default;

  const std::string& name() const { return name_; }
  int num_tasks() const { return static_cast<int>(by_task_.size()); }
  int num_workers() const { return static_cast<int>(by_worker_.size()); }
  int num_answers() const { return num_answers_; }

  const std::vector<NumericTaskVote>& AnswersForTask(TaskId task) const {
    return by_task_[task];
  }
  const std::vector<NumericWorkerVote>& AnswersByWorker(
      WorkerId worker) const {
    return by_worker_[worker];
  }

  // Contiguous SoA view over the same answers; built once at Build() time.
  const NumericCsr& csr() const { return csr_; }

  bool HasTruth(TaskId task) const { return has_truth_[task]; }
  double Truth(TaskId task) const { return truth_[task]; }
  int num_labeled_tasks() const { return num_labeled_; }

  double Redundancy() const {
    return num_tasks() == 0
               ? 0.0
               : static_cast<double>(num_answers_) / num_tasks();
  }

 private:
  friend class NumericDatasetBuilder;

  std::string name_;
  int num_answers_ = 0;
  int num_labeled_ = 0;
  std::vector<std::vector<NumericTaskVote>> by_task_;
  std::vector<std::vector<NumericWorkerVote>> by_worker_;
  NumericCsr csr_;
  std::vector<double> truth_;
  std::vector<bool> has_truth_;
};

class NumericDatasetBuilder {
 public:
  NumericDatasetBuilder(int num_tasks, int num_workers);

  void set_name(std::string name) { name_ = std::move(name); }
  void AddAnswer(TaskId task, WorkerId worker, double value);
  void SetTruth(TaskId task, double truth);

  // See CategoricalDatasetBuilder::TryBuild / Build.
  util::Status TryBuild(NumericDataset* out) &&;
  NumericDataset Build() &&;

 private:
  std::string name_;
  int num_tasks_;
  int num_workers_;
  std::vector<std::vector<NumericTaskVote>> by_task_;
  std::vector<std::vector<NumericWorkerVote>> by_worker_;
  std::vector<double> truth_;
  std::vector<bool> has_truth_;
};

}  // namespace crowdtruth::data

#endif  // CROWDTRUTH_DATA_DATASET_H_
