#include "data/io.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "util/csv.h"

namespace crowdtruth::data {
namespace {

using util::Status;

// Interns arbitrary string ids into dense [0, n) integers.
class IdInterner {
 public:
  int Intern(const std::string& id) {
    auto [it, inserted] = ids_.emplace(id, static_cast<int>(ids_.size()));
    (void)inserted;
    return it->second;
  }
  int size() const { return static_cast<int>(ids_.size()); }

 private:
  std::map<std::string, int> ids_;
};

Status CheckHeader(const std::vector<std::vector<std::string>>& rows,
                   const std::vector<std::string>& expected,
                   const std::string& path) {
  if (rows.empty() || rows[0] != expected) {
    std::string want;
    for (size_t i = 0; i < expected.size(); ++i) {
      if (i > 0) want += ",";
      want += expected[i];
    }
    return Status::ParseError(path + ": expected header \"" + want + "\"");
  }
  return Status::Ok();
}

Status ParseIntField(const std::string& field, const std::string& path,
                     int* out) {
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0' || errno == ERANGE ||
      value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    return Status::ParseError(path + ": not an integer: \"" + field + "\"");
  }
  *out = static_cast<int>(value);
  return Status::Ok();
}

Status ParseDoubleField(const std::string& field, const std::string& path,
                        double* out) {
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    return Status::ParseError(path + ": not a number: \"" + field + "\"");
  }
  *out = value;
  return Status::Ok();
}

}  // namespace

Status LoadCategorical(const std::string& answers_path,
                       const std::string& truth_path, int num_choices,
                       const ValidationOptions& validation,
                       CategoricalDataset* out, ValidationReport* report) {
  if (num_choices > kMaxLabelSpace) {
    return Status::InvalidArgument(
        "num_choices " + std::to_string(num_choices) +
        " exceeds the label-space cap " + std::to_string(kMaxLabelSpace));
  }
  std::vector<std::vector<std::string>> answer_rows;
  Status status = util::ReadCsvFile(answers_path, &answer_rows);
  if (!status.ok()) return status;
  status = CheckHeader(answer_rows, {"task", "worker", "answer"},
                       answers_path);
  if (!status.ok()) return status;

  IdInterner tasks;
  IdInterner workers;
  std::vector<RawCategoricalAnswer> raw;
  raw.reserve(answer_rows.size());
  for (size_t i = 1; i < answer_rows.size(); ++i) {
    const auto& row = answer_rows[i];
    if (row.size() != 3) {
      return Status::ParseError(answers_path + ": row has " +
                                std::to_string(row.size()) + " fields");
    }
    int label = 0;
    status = ParseIntField(row[2], answers_path, &label);
    if (!status.ok()) return status;
    raw.push_back({tasks.Intern(row[0]), workers.Intern(row[1]), label,
                   static_cast<int64_t>(i + 1)});
  }

  std::vector<RawCategoricalTruth> raw_truth;
  if (!truth_path.empty()) {
    std::vector<std::vector<std::string>> truth_rows;
    status = util::ReadCsvFile(truth_path, &truth_rows);
    if (!status.ok()) return status;
    status = CheckHeader(truth_rows, {"task", "truth"}, truth_path);
    if (!status.ok()) return status;
    for (size_t i = 1; i < truth_rows.size(); ++i) {
      const auto& row = truth_rows[i];
      if (row.size() != 2) {
        return Status::ParseError(truth_path + ": row has " +
                                  std::to_string(row.size()) + " fields");
      }
      int label = 0;
      status = ParseIntField(row[1], truth_path, &label);
      if (!status.ok()) return status;
      // Truth rows may mention tasks with no answers; intern them too so the
      // dataset covers the full task set.
      raw_truth.push_back(
          {tasks.Intern(row[0]), label, static_cast<int64_t>(i + 1)});
    }
  }

  ValidationReport local_report;
  ValidationReport* tally = report != nullptr ? report : &local_report;
  status = ValidateCategoricalRecords(answers_path, num_choices, validation,
                                      &raw, tally);
  if (!status.ok()) return status;
  status = ValidateCategoricalTruth(truth_path, num_choices, validation,
                                    &raw_truth, tally);
  if (!status.ok()) return status;

  // Label space: explicit num_choices, else inferred from the surviving
  // answers and truth rows (validation has already removed negatives).
  int max_label = 1;
  for (const RawCategoricalAnswer& r : raw) {
    max_label = std::max(max_label, r.label);
  }
  for (const RawCategoricalTruth& r : raw_truth) {
    max_label = std::max(max_label, r.label);
  }
  const int choices =
      num_choices > 0 ? num_choices : std::max(2, max_label + 1);

  CategoricalDatasetBuilder builder(tasks.size(), workers.size(), choices);
  builder.set_name(answers_path);
  for (const RawCategoricalAnswer& r : raw) {
    builder.AddAnswer(r.task, r.worker, r.label);
  }
  for (const RawCategoricalTruth& r : raw_truth) {
    builder.SetTruth(r.task, r.label);
  }
  CategoricalDataset dataset;
  status = std::move(builder).TryBuild(&dataset);
  if (!status.ok()) return status;
  if (report != nullptr) {
    ValidationReport structural = ValidateDataset(dataset);
    structural.answers_seen = 0;  // already counted at the record level
    structural.answers_kept = 0;
    report->Merge(structural);
  }
  *out = std::move(dataset);
  return Status::Ok();
}

Status LoadNumeric(const std::string& answers_path,
                   const std::string& truth_path,
                   const ValidationOptions& validation, NumericDataset* out,
                   ValidationReport* report) {
  std::vector<std::vector<std::string>> answer_rows;
  Status status = util::ReadCsvFile(answers_path, &answer_rows);
  if (!status.ok()) return status;
  status = CheckHeader(answer_rows, {"task", "worker", "answer"},
                       answers_path);
  if (!status.ok()) return status;

  IdInterner tasks;
  IdInterner workers;
  std::vector<RawNumericAnswer> raw;
  raw.reserve(answer_rows.size());
  for (size_t i = 1; i < answer_rows.size(); ++i) {
    const auto& row = answer_rows[i];
    if (row.size() != 3) {
      return Status::ParseError(answers_path + ": row has " +
                                std::to_string(row.size()) + " fields");
    }
    double value = 0.0;
    status = ParseDoubleField(row[2], answers_path, &value);
    if (!status.ok()) return status;
    raw.push_back({tasks.Intern(row[0]), workers.Intern(row[1]), value,
                   static_cast<int64_t>(i + 1)});
  }

  std::vector<RawNumericTruth> raw_truth;
  if (!truth_path.empty()) {
    std::vector<std::vector<std::string>> truth_rows;
    status = util::ReadCsvFile(truth_path, &truth_rows);
    if (!status.ok()) return status;
    status = CheckHeader(truth_rows, {"task", "truth"}, truth_path);
    if (!status.ok()) return status;
    for (size_t i = 1; i < truth_rows.size(); ++i) {
      const auto& row = truth_rows[i];
      if (row.size() != 2) {
        return Status::ParseError(truth_path + ": row has " +
                                  std::to_string(row.size()) + " fields");
      }
      double value = 0.0;
      status = ParseDoubleField(row[1], truth_path, &value);
      if (!status.ok()) return status;
      raw_truth.push_back(
          {tasks.Intern(row[0]), value, static_cast<int64_t>(i + 1)});
    }
  }

  ValidationReport local_report;
  ValidationReport* tally = report != nullptr ? report : &local_report;
  status = ValidateNumericRecords(answers_path, validation, &raw, tally);
  if (!status.ok()) return status;
  status = ValidateNumericTruth(truth_path, validation, &raw_truth, tally);
  if (!status.ok()) return status;

  NumericDatasetBuilder builder(tasks.size(), workers.size());
  builder.set_name(answers_path);
  for (const RawNumericAnswer& r : raw) {
    builder.AddAnswer(r.task, r.worker, r.value);
  }
  for (const RawNumericTruth& r : raw_truth) {
    builder.SetTruth(r.task, r.value);
  }
  NumericDataset dataset;
  status = std::move(builder).TryBuild(&dataset);
  if (!status.ok()) return status;
  if (report != nullptr) {
    ValidationReport structural = ValidateDataset(dataset);
    structural.answers_seen = 0;
    structural.answers_kept = 0;
    report->Merge(structural);
  }
  *out = std::move(dataset);
  return Status::Ok();
}

Status LoadCategorical(const std::string& answers_path,
                       const std::string& truth_path, int num_choices,
                       CategoricalDataset* out) {
  return LoadCategorical(answers_path, truth_path, num_choices,
                         ValidationOptions(), out, /*report=*/nullptr);
}

Status LoadNumeric(const std::string& answers_path,
                   const std::string& truth_path, NumericDataset* out) {
  return LoadNumeric(answers_path, truth_path, ValidationOptions(), out,
                     /*report=*/nullptr);
}

Status SaveCategorical(const CategoricalDataset& dataset,
                       const std::string& answers_path,
                       const std::string& truth_path) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"task", "worker", "answer"});
  for (TaskId t = 0; t < dataset.num_tasks(); ++t) {
    for (const TaskVote& vote : dataset.AnswersForTask(t)) {
      rows.push_back({std::to_string(t), std::to_string(vote.worker),
                      std::to_string(vote.label)});
    }
  }
  Status status = util::WriteCsvFile(answers_path, rows);
  if (!status.ok()) return status;

  rows.clear();
  rows.push_back({"task", "truth"});
  for (TaskId t = 0; t < dataset.num_tasks(); ++t) {
    if (dataset.HasTruth(t)) {
      rows.push_back({std::to_string(t), std::to_string(dataset.Truth(t))});
    }
  }
  return util::WriteCsvFile(truth_path, rows);
}

Status SaveNumeric(const NumericDataset& dataset,
                   const std::string& answers_path,
                   const std::string& truth_path) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"task", "worker", "answer"});
  for (TaskId t = 0; t < dataset.num_tasks(); ++t) {
    for (const NumericTaskVote& vote : dataset.AnswersForTask(t)) {
      rows.push_back({std::to_string(t), std::to_string(vote.worker),
                      std::to_string(vote.value)});
    }
  }
  Status status = util::WriteCsvFile(answers_path, rows);
  if (!status.ok()) return status;

  rows.clear();
  rows.push_back({"task", "truth"});
  for (TaskId t = 0; t < dataset.num_tasks(); ++t) {
    if (dataset.HasTruth(t)) {
      rows.push_back({std::to_string(t), std::to_string(dataset.Truth(t))});
    }
  }
  return util::WriteCsvFile(truth_path, rows);
}

}  // namespace crowdtruth::data
