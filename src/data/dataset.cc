#include "data/dataset.h"

#include <algorithm>

namespace crowdtruth::data {
namespace {

// Validates that no worker answered the same task twice. Vote lists are
// small (redundancy is single/double digits) so a sort per task is cheap.
template <typename VoteList>
bool HasDuplicateWorker(const VoteList& votes) {
  std::vector<int> workers;
  workers.reserve(votes.size());
  for (const auto& vote : votes) workers.push_back(vote.worker);
  std::sort(workers.begin(), workers.end());
  return std::adjacent_find(workers.begin(), workers.end()) != workers.end();
}

template <typename ByTask>
util::Status CheckNoDuplicates(const ByTask& by_task,
                               const std::string& name) {
  for (size_t t = 0; t < by_task.size(); ++t) {
    if (HasDuplicateWorker(by_task[t])) {
      return util::Status::ValidationError(
          (name.empty() ? std::string("dataset") : name) + ": task " +
          std::to_string(t) + " has duplicate worker answers");
    }
  }
  return util::Status::Ok();
}

// Prefix sums of the row sizes: offsets[r+1] - offsets[r] == rows[r].size().
template <typename Rows>
std::vector<int32_t> RowOffsets(const Rows& rows) {
  std::vector<int32_t> offsets(rows.size() + 1, 0);
  for (size_t r = 0; r < rows.size(); ++r) {
    offsets[r + 1] = offsets[r] + static_cast<int32_t>(rows[r].size());
  }
  return offsets;
}

// worker_to_task from the two orientations alone. A task-ascending scan of
// the task-major arrays hands each worker its task-major positions sorted
// by task id; each worker-major entry then finds its twin by binary search
// on the task id (unique per worker — duplicates are rejected before the
// CSR is built).
std::vector<int32_t> CrossLinkWorkerToTask(
    const std::vector<int32_t>& task_offsets,
    const std::vector<int32_t>& task_workers,
    const std::vector<int32_t>& worker_offsets,
    const std::vector<int32_t>& worker_tasks) {
  const int num_answers = static_cast<int>(task_workers.size());
  const int num_tasks = static_cast<int>(task_offsets.size()) - 1;
  const int num_workers = static_cast<int>(worker_offsets.size()) - 1;
  std::vector<int32_t> cursor(worker_offsets.begin(),
                              worker_offsets.end() - 1);
  std::vector<int32_t> sorted_tasks(num_answers);
  std::vector<int32_t> sorted_pos(num_answers);
  for (int t = 0; t < num_tasks; ++t) {
    for (int32_t a = task_offsets[t]; a < task_offsets[t + 1]; ++a) {
      const int32_t slot = cursor[task_workers[a]]++;
      sorted_tasks[slot] = t;
      sorted_pos[slot] = a;
    }
  }
  std::vector<int32_t> link(num_answers, 0);
  for (int w = 0; w < num_workers; ++w) {
    const int32_t begin = worker_offsets[w];
    const int32_t end = worker_offsets[w + 1];
    for (int32_t a = begin; a < end; ++a) {
      const auto first = sorted_tasks.begin() + begin;
      const auto it =
          std::lower_bound(first, sorted_tasks.begin() + end, worker_tasks[a]);
      link[a] = sorted_pos[begin + (it - first)];
    }
  }
  return link;
}

CategoricalCsr BuildCsr(const std::vector<std::vector<TaskVote>>& by_task,
                        const std::vector<std::vector<WorkerVote>>& by_worker) {
  CategoricalCsr csr;
  csr.task_offsets = RowOffsets(by_task);
  csr.worker_offsets = RowOffsets(by_worker);
  const int num_answers = csr.task_offsets.back();
  csr.task_workers.reserve(num_answers);
  csr.task_labels.reserve(num_answers);
  for (const auto& row : by_task) {
    for (const TaskVote& vote : row) {
      csr.task_workers.push_back(vote.worker);
      csr.task_labels.push_back(vote.label);
    }
  }
  csr.worker_tasks.reserve(num_answers);
  csr.worker_labels.reserve(num_answers);
  for (const auto& row : by_worker) {
    for (const WorkerVote& vote : row) {
      csr.worker_tasks.push_back(vote.task);
      csr.worker_labels.push_back(vote.label);
    }
  }
  csr.worker_to_task = CrossLinkWorkerToTask(
      csr.task_offsets, csr.task_workers, csr.worker_offsets,
      csr.worker_tasks);
  return csr;
}

NumericCsr BuildCsr(const std::vector<std::vector<NumericTaskVote>>& by_task,
                    const std::vector<std::vector<NumericWorkerVote>>&
                        by_worker) {
  NumericCsr csr;
  csr.task_offsets = RowOffsets(by_task);
  csr.worker_offsets = RowOffsets(by_worker);
  const int num_answers = csr.task_offsets.back();
  csr.task_workers.reserve(num_answers);
  csr.task_values.reserve(num_answers);
  for (const auto& row : by_task) {
    for (const NumericTaskVote& vote : row) {
      csr.task_workers.push_back(vote.worker);
      csr.task_values.push_back(vote.value);
    }
  }
  csr.worker_tasks.reserve(num_answers);
  csr.worker_values.reserve(num_answers);
  for (const auto& row : by_worker) {
    for (const NumericWorkerVote& vote : row) {
      csr.worker_tasks.push_back(vote.task);
      csr.worker_values.push_back(vote.value);
    }
  }
  csr.worker_to_task = CrossLinkWorkerToTask(
      csr.task_offsets, csr.task_workers, csr.worker_offsets,
      csr.worker_tasks);
  return csr;
}

}  // namespace

CategoricalDatasetBuilder::CategoricalDatasetBuilder(int num_tasks,
                                                     int num_workers,
                                                     int num_choices)
    : num_tasks_(num_tasks),
      num_workers_(num_workers),
      num_choices_(num_choices),
      by_task_(num_tasks),
      by_worker_(num_workers),
      truth_(num_tasks, kNoTruth) {
  CROWDTRUTH_CHECK_GE(num_tasks, 0);
  CROWDTRUTH_CHECK_GE(num_workers, 0);
  CROWDTRUTH_CHECK_GE(num_choices, 2);
}

void CategoricalDatasetBuilder::AddAnswer(TaskId task, WorkerId worker,
                                          LabelId label) {
  CROWDTRUTH_CHECK_GE(task, 0);
  CROWDTRUTH_CHECK_LT(task, num_tasks_);
  CROWDTRUTH_CHECK_GE(worker, 0);
  CROWDTRUTH_CHECK_LT(worker, num_workers_);
  CROWDTRUTH_CHECK_GE(label, 0);
  CROWDTRUTH_CHECK_LT(label, num_choices_);
  by_task_[task].push_back({worker, label});
  by_worker_[worker].push_back({task, label});
}

void CategoricalDatasetBuilder::SetTruth(TaskId task, LabelId truth) {
  CROWDTRUTH_CHECK_GE(task, 0);
  CROWDTRUTH_CHECK_LT(task, num_tasks_);
  CROWDTRUTH_CHECK_GE(truth, 0);
  CROWDTRUTH_CHECK_LT(truth, num_choices_);
  truth_[task] = truth;
}

util::Status CategoricalDatasetBuilder::TryBuild(CategoricalDataset* out) && {
  util::Status status = CheckNoDuplicates(by_task_, name_);
  if (!status.ok()) return status;
  CategoricalDataset dataset;
  dataset.name_ = std::move(name_);
  dataset.num_choices_ = num_choices_;
  int answers = 0;
  for (TaskId t = 0; t < num_tasks_; ++t) {
    answers += static_cast<int>(by_task_[t].size());
  }
  dataset.num_answers_ = answers;
  dataset.num_labeled_ = static_cast<int>(
      std::count_if(truth_.begin(), truth_.end(),
                    [](LabelId v) { return v != kNoTruth; }));
  dataset.by_task_ = std::move(by_task_);
  dataset.by_worker_ = std::move(by_worker_);
  dataset.csr_ = BuildCsr(dataset.by_task_, dataset.by_worker_);
  dataset.truth_ = std::move(truth_);
  *out = std::move(dataset);
  return util::Status::Ok();
}

CategoricalDataset CategoricalDatasetBuilder::Build() && {
  CategoricalDataset dataset;
  const util::Status status = std::move(*this).TryBuild(&dataset);
  CROWDTRUTH_CHECK(status.ok()) << status.ToString();
  return dataset;
}

NumericDatasetBuilder::NumericDatasetBuilder(int num_tasks, int num_workers)
    : num_tasks_(num_tasks),
      num_workers_(num_workers),
      by_task_(num_tasks),
      by_worker_(num_workers),
      truth_(num_tasks, 0.0),
      has_truth_(num_tasks, false) {
  CROWDTRUTH_CHECK_GE(num_tasks, 0);
  CROWDTRUTH_CHECK_GE(num_workers, 0);
}

void NumericDatasetBuilder::AddAnswer(TaskId task, WorkerId worker,
                                      double value) {
  CROWDTRUTH_CHECK_GE(task, 0);
  CROWDTRUTH_CHECK_LT(task, num_tasks_);
  CROWDTRUTH_CHECK_GE(worker, 0);
  CROWDTRUTH_CHECK_LT(worker, num_workers_);
  by_task_[task].push_back({worker, value});
  by_worker_[worker].push_back({task, value});
}

void NumericDatasetBuilder::SetTruth(TaskId task, double truth) {
  CROWDTRUTH_CHECK_GE(task, 0);
  CROWDTRUTH_CHECK_LT(task, num_tasks_);
  truth_[task] = truth;
  has_truth_[task] = true;
}

util::Status NumericDatasetBuilder::TryBuild(NumericDataset* out) && {
  util::Status status = CheckNoDuplicates(by_task_, name_);
  if (!status.ok()) return status;
  NumericDataset dataset;
  dataset.name_ = std::move(name_);
  int answers = 0;
  for (TaskId t = 0; t < num_tasks_; ++t) {
    answers += static_cast<int>(by_task_[t].size());
  }
  dataset.num_answers_ = answers;
  dataset.num_labeled_ = static_cast<int>(
      std::count(has_truth_.begin(), has_truth_.end(), true));
  dataset.by_task_ = std::move(by_task_);
  dataset.by_worker_ = std::move(by_worker_);
  dataset.csr_ = BuildCsr(dataset.by_task_, dataset.by_worker_);
  dataset.truth_ = std::move(truth_);
  dataset.has_truth_ = std::move(has_truth_);
  *out = std::move(dataset);
  return util::Status::Ok();
}

NumericDataset NumericDatasetBuilder::Build() && {
  NumericDataset dataset;
  const util::Status status = std::move(*this).TryBuild(&dataset);
  CROWDTRUTH_CHECK(status.ok()) << status.ToString();
  return dataset;
}

}  // namespace crowdtruth::data
