#include "data/dataset.h"

#include <algorithm>

namespace crowdtruth::data {
namespace {

// Validates that no worker answered the same task twice. Vote lists are
// small (redundancy is single/double digits) so a sort per task is cheap.
template <typename VoteList>
bool HasDuplicateWorker(const VoteList& votes) {
  std::vector<int> workers;
  workers.reserve(votes.size());
  for (const auto& vote : votes) workers.push_back(vote.worker);
  std::sort(workers.begin(), workers.end());
  return std::adjacent_find(workers.begin(), workers.end()) != workers.end();
}

template <typename ByTask>
util::Status CheckNoDuplicates(const ByTask& by_task,
                               const std::string& name) {
  for (size_t t = 0; t < by_task.size(); ++t) {
    if (HasDuplicateWorker(by_task[t])) {
      return util::Status::ValidationError(
          (name.empty() ? std::string("dataset") : name) + ": task " +
          std::to_string(t) + " has duplicate worker answers");
    }
  }
  return util::Status::Ok();
}

}  // namespace

CategoricalDatasetBuilder::CategoricalDatasetBuilder(int num_tasks,
                                                     int num_workers,
                                                     int num_choices)
    : num_tasks_(num_tasks),
      num_workers_(num_workers),
      num_choices_(num_choices),
      by_task_(num_tasks),
      by_worker_(num_workers),
      truth_(num_tasks, kNoTruth) {
  CROWDTRUTH_CHECK_GE(num_tasks, 0);
  CROWDTRUTH_CHECK_GE(num_workers, 0);
  CROWDTRUTH_CHECK_GE(num_choices, 2);
}

void CategoricalDatasetBuilder::AddAnswer(TaskId task, WorkerId worker,
                                          LabelId label) {
  CROWDTRUTH_CHECK_GE(task, 0);
  CROWDTRUTH_CHECK_LT(task, num_tasks_);
  CROWDTRUTH_CHECK_GE(worker, 0);
  CROWDTRUTH_CHECK_LT(worker, num_workers_);
  CROWDTRUTH_CHECK_GE(label, 0);
  CROWDTRUTH_CHECK_LT(label, num_choices_);
  by_task_[task].push_back({worker, label});
  by_worker_[worker].push_back({task, label});
}

void CategoricalDatasetBuilder::SetTruth(TaskId task, LabelId truth) {
  CROWDTRUTH_CHECK_GE(task, 0);
  CROWDTRUTH_CHECK_LT(task, num_tasks_);
  CROWDTRUTH_CHECK_GE(truth, 0);
  CROWDTRUTH_CHECK_LT(truth, num_choices_);
  truth_[task] = truth;
}

util::Status CategoricalDatasetBuilder::TryBuild(CategoricalDataset* out) && {
  util::Status status = CheckNoDuplicates(by_task_, name_);
  if (!status.ok()) return status;
  CategoricalDataset dataset;
  dataset.name_ = std::move(name_);
  dataset.num_choices_ = num_choices_;
  int answers = 0;
  for (TaskId t = 0; t < num_tasks_; ++t) {
    answers += static_cast<int>(by_task_[t].size());
  }
  dataset.num_answers_ = answers;
  dataset.num_labeled_ = static_cast<int>(
      std::count_if(truth_.begin(), truth_.end(),
                    [](LabelId v) { return v != kNoTruth; }));
  dataset.by_task_ = std::move(by_task_);
  dataset.by_worker_ = std::move(by_worker_);
  dataset.truth_ = std::move(truth_);
  *out = std::move(dataset);
  return util::Status::Ok();
}

CategoricalDataset CategoricalDatasetBuilder::Build() && {
  CategoricalDataset dataset;
  const util::Status status = std::move(*this).TryBuild(&dataset);
  CROWDTRUTH_CHECK(status.ok()) << status.ToString();
  return dataset;
}

NumericDatasetBuilder::NumericDatasetBuilder(int num_tasks, int num_workers)
    : num_tasks_(num_tasks),
      num_workers_(num_workers),
      by_task_(num_tasks),
      by_worker_(num_workers),
      truth_(num_tasks, 0.0),
      has_truth_(num_tasks, false) {
  CROWDTRUTH_CHECK_GE(num_tasks, 0);
  CROWDTRUTH_CHECK_GE(num_workers, 0);
}

void NumericDatasetBuilder::AddAnswer(TaskId task, WorkerId worker,
                                      double value) {
  CROWDTRUTH_CHECK_GE(task, 0);
  CROWDTRUTH_CHECK_LT(task, num_tasks_);
  CROWDTRUTH_CHECK_GE(worker, 0);
  CROWDTRUTH_CHECK_LT(worker, num_workers_);
  by_task_[task].push_back({worker, value});
  by_worker_[worker].push_back({task, value});
}

void NumericDatasetBuilder::SetTruth(TaskId task, double truth) {
  CROWDTRUTH_CHECK_GE(task, 0);
  CROWDTRUTH_CHECK_LT(task, num_tasks_);
  truth_[task] = truth;
  has_truth_[task] = true;
}

util::Status NumericDatasetBuilder::TryBuild(NumericDataset* out) && {
  util::Status status = CheckNoDuplicates(by_task_, name_);
  if (!status.ok()) return status;
  NumericDataset dataset;
  dataset.name_ = std::move(name_);
  int answers = 0;
  for (TaskId t = 0; t < num_tasks_; ++t) {
    answers += static_cast<int>(by_task_[t].size());
  }
  dataset.num_answers_ = answers;
  dataset.num_labeled_ = static_cast<int>(
      std::count(has_truth_.begin(), has_truth_.end(), true));
  dataset.by_task_ = std::move(by_task_);
  dataset.by_worker_ = std::move(by_worker_);
  dataset.truth_ = std::move(truth_);
  dataset.has_truth_ = std::move(has_truth_);
  *out = std::move(dataset);
  return util::Status::Ok();
}

NumericDataset NumericDatasetBuilder::Build() && {
  NumericDataset dataset;
  const util::Status status = std::move(*this).TryBuild(&dataset);
  CROWDTRUTH_CHECK(status.ok()) << status.ToString();
  return dataset;
}

}  // namespace crowdtruth::data
