// Append-only answer log: the on-disk stream format the streaming engine
// consumes (src/streaming/).
//
// A log is a CSV-framed text file whose first line is a header row
//
//   crowdtruth_log,v1,categorical,<num_choices>
//   crowdtruth_log,v1,numeric
//
// followed by one `task,worker,answer` row per collected answer, in arrival
// order. Task and worker ids are arbitrary strings (interned downstream in
// first-appearance order, exactly as data/io.h does for batch CSV files).
// Appending new answers never rewrites earlier bytes, so a log can be
// tailed by a replaying engine while a collector is still writing it.
//
// `num_choices` may be 0 ("unknown"); readers then infer the label space or
// require it from the caller.
#ifndef CROWDTRUTH_DATA_ANSWER_LOG_H_
#define CROWDTRUTH_DATA_ANSWER_LOG_H_

#include <cstdint>
#include <fstream>
#include <string>

#include "data/dataset.h"
#include "data/validate.h"
#include "util/status.h"

namespace crowdtruth::data {

enum class AnswerLogType { kCategorical, kNumeric };

struct AnswerLogHeader {
  AnswerLogType type = AnswerLogType::kCategorical;
  // Categorical only; 0 = not recorded.
  int num_choices = 0;
};

// One logged answer. `label` is filled for categorical logs, `value` for
// numeric logs; `answer` always carries the raw field text. `sequence` is
// the record's 0-based position in the *whole* log — global even when the
// reader only yields a shard slice, so every shard agrees on where barriers
// and checkpoints fall.
struct AnswerLogRecord {
  std::string task;
  std::string worker;
  std::string answer;
  LabelId label = 0;
  double value = 0.0;
  int64_t sequence = 0;
};

// Deterministic task -> shard assignment: FNV-1a over the task's string id,
// mod `shard_count`. Every process that hashes the same id agrees on the
// owner, with no coordination and no dependence on arrival order. All of a
// task's answers land on one shard, so the only cross-shard coupling left
// is per-worker state (streaming/worker_summary.h).
int ShardOfTask(const std::string& task, int shard_count);

// Sequential writer. Create() truncates and writes the header; Append()
// adds one answer row. The stream is flushed per Append so a concurrently
// replaying reader observes whole records.
class AnswerLogWriter {
 public:
  AnswerLogWriter() = default;

  static util::Status Create(const std::string& path,
                             const AnswerLogHeader& header,
                             AnswerLogWriter* out);

  util::Status Append(const std::string& task, const std::string& worker,
                      LabelId label);
  util::Status Append(const std::string& task, const std::string& worker,
                      double value);

 private:
  util::Status AppendRow(const std::string& task, const std::string& worker,
                         const std::string& answer);

  std::string path_;
  std::ofstream out_;
};

// Sequential reader. Open() validates the header; Next() yields records in
// file order until `*eof` is set.
class AnswerLogReader {
 public:
  util::Status Open(const std::string& path);
  const AnswerLogHeader& header() const { return header_; }

  // Restricts Next() to the deterministic hash-partitioned slice
  // ShardOfTask(task, shard_count) == shard_index. Every row is still
  // parsed and validated (a malformed row fails the read on every shard,
  // not just its owner) and still consumes a global sequence number; rows
  // owned by other shards are silently skipped. The default (0, 1) yields
  // the whole log. Call before or between Next() calls.
  util::Status SetShardSlice(int shard_index, int shard_count);

  // On success either fills `*record` (with its global `sequence`) or sets
  // `*eof`. Malformed rows are a ParseError carrying the line number.
  util::Status Next(AnswerLogRecord* record, bool* eof);

  // Global sequence number the next record would get == records consumed
  // from the underlying file so far (across all shards' slices).
  int64_t next_sequence() const { return sequence_; }

 private:
  std::ifstream in_;
  AnswerLogHeader header_;
  std::string path_;
  int line_ = 1;
  int shard_index_ = 0;
  int shard_count_ = 1;
  int64_t sequence_ = 0;
};

// Dumps every answer of a dataset as a log (task-major, preserving each
// task's answer insertion order). Ids are the dense indices printed as
// decimal strings, so a replay interns them back to the same order.
util::Status WriteAnswerLog(const CategoricalDataset& dataset,
                            const std::string& path);
util::Status WriteAnswerLog(const NumericDataset& dataset,
                            const std::string& path);

// Reads a whole log into a batch dataset, interning ids in first-appearance
// order — the same order a streaming replay assigns, so task/worker indices
// line up between the incremental and batch runs. `truth_path` is an
// optional `task,truth` CSV keyed by the log's string ids. `num_choices`
// <= 0 falls back to the header value, then to max label + 1. Records pass
// through the validator (data/validate.h) under `validation.policy`;
// `report` (optional) receives the tally.
util::Status LoadCategoricalLog(const std::string& path,
                                const std::string& truth_path,
                                int num_choices,
                                const ValidationOptions& validation,
                                CategoricalDataset* out,
                                ValidationReport* report);
util::Status LoadNumericLog(const std::string& path,
                            const std::string& truth_path,
                            const ValidationOptions& validation,
                            NumericDataset* out, ValidationReport* report);

// Strict-validation convenience overloads (policy kReject, no report).
util::Status LoadCategoricalLog(const std::string& path,
                                const std::string& truth_path,
                                int num_choices, CategoricalDataset* out);
util::Status LoadNumericLog(const std::string& path,
                            const std::string& truth_path,
                            NumericDataset* out);

}  // namespace crowdtruth::data

#endif  // CROWDTRUTH_DATA_ANSWER_LOG_H_
