// CSV import/export for datasets.
//
// On-disk format (matches the layout the paper's released datasets use):
//   answers file: header "task,worker,answer", one row per collected answer;
//   truth file:   header "task,truth", one row per labeled task.
// Task and worker ids may be arbitrary strings; they are interned into dense
// integer ids on load. Categorical answers are choice indices (0-based).
#ifndef CROWDTRUTH_DATA_IO_H_
#define CROWDTRUTH_DATA_IO_H_

#include <string>

#include "data/dataset.h"
#include "data/validate.h"
#include "util/status.h"

namespace crowdtruth::data {

// Loads a categorical dataset. `truth_path` may be empty (no ground truth).
// `num_choices` <= 0 means "infer from the data" (max label + 1, at least 2).
//
// Every record passes through the validator (data/validate.h):
// `validation.policy` decides whether duplicate pairs, out-of-range labels
// and conflicting truth rows fail the load (kReject, the default) or are
// repaired in place. `report`, when non-null, receives the full tally
// (including post-build structural diagnostics).
util::Status LoadCategorical(const std::string& answers_path,
                             const std::string& truth_path, int num_choices,
                             const ValidationOptions& validation,
                             CategoricalDataset* out,
                             ValidationReport* report);

util::Status LoadNumeric(const std::string& answers_path,
                         const std::string& truth_path,
                         const ValidationOptions& validation,
                         NumericDataset* out, ValidationReport* report);

// Strict-validation convenience overloads (policy kReject, no report).
util::Status LoadCategorical(const std::string& answers_path,
                             const std::string& truth_path, int num_choices,
                             CategoricalDataset* out);

util::Status LoadNumeric(const std::string& answers_path,
                         const std::string& truth_path, NumericDataset* out);

// Writes `dataset` to answers/truth CSV files (truth file contains only the
// labeled subset). Round-trips with the loaders above up to id renaming.
util::Status SaveCategorical(const CategoricalDataset& dataset,
                             const std::string& answers_path,
                             const std::string& truth_path);

util::Status SaveNumeric(const NumericDataset& dataset,
                         const std::string& answers_path,
                         const std::string& truth_path);

}  // namespace crowdtruth::data

#endif  // CROWDTRUTH_DATA_IO_H_
