#include "data/answer_log.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

#include "util/csv.h"
#include "util/json_writer.h"

namespace crowdtruth::data {
namespace {

using util::Status;

constexpr char kMagic[] = "crowdtruth_log";
constexpr char kVersion[] = "v1";

std::string HeaderLine(const AnswerLogHeader& header) {
  std::vector<std::string> fields = {kMagic, kVersion};
  if (header.type == AnswerLogType::kCategorical) {
    fields.push_back("categorical");
    fields.push_back(std::to_string(header.num_choices));
  } else {
    fields.push_back("numeric");
  }
  return util::FormatCsvLine(fields);
}

Status ParseHeader(const std::vector<std::string>& fields,
                   const std::string& path, AnswerLogHeader* header) {
  if (fields.size() < 3 || fields[0] != kMagic) {
    return Status::ParseError(path + ": not an answer log (expected \"" +
                              kMagic + ",...\" header)");
  }
  if (fields[1] != kVersion) {
    return Status::ParseError(path + ": unsupported log version \"" +
                              fields[1] + "\"");
  }
  if (fields[2] == "categorical") {
    header->type = AnswerLogType::kCategorical;
    header->num_choices = 0;
    if (fields.size() > 3) {
      char* end = nullptr;
      const long choices = std::strtol(fields[3].c_str(), &end, 10);
      if (end == fields[3].c_str() || *end != '\0' || choices < 0) {
        return Status::ParseError(path + ": bad num_choices \"" + fields[3] +
                                  "\"");
      }
      header->num_choices = static_cast<int>(choices);
    }
    return Status::Ok();
  }
  if (fields[2] == "numeric") {
    header->type = AnswerLogType::kNumeric;
    header->num_choices = 0;
    return Status::Ok();
  }
  return Status::ParseError(path + ": unknown log type \"" + fields[2] +
                            "\"");
}

// Interns arbitrary string ids into dense [0, n) integers in
// first-appearance order.
class IdInterner {
 public:
  int Intern(const std::string& id) {
    auto [it, inserted] = ids_.emplace(id, static_cast<int>(ids_.size()));
    (void)inserted;
    return it->second;
  }
  int size() const { return static_cast<int>(ids_.size()); }

 private:
  std::map<std::string, int> ids_;
};

Status ReadTruthRows(const std::string& truth_path,
                     std::vector<std::pair<std::string, std::string>>* rows) {
  std::vector<std::vector<std::string>> raw;
  Status status = util::ReadCsvFile(truth_path, &raw);
  if (!status.ok()) return status;
  if (raw.empty() || raw[0] != std::vector<std::string>{"task", "truth"}) {
    return Status::ParseError(truth_path +
                              ": expected header \"task,truth\"");
  }
  for (size_t i = 1; i < raw.size(); ++i) {
    if (raw[i].size() != 2) {
      return Status::ParseError(truth_path + ": row has " +
                                std::to_string(raw[i].size()) + " fields");
    }
    rows->emplace_back(raw[i][0], raw[i][1]);
  }
  return Status::Ok();
}

}  // namespace

Status AnswerLogWriter::Create(const std::string& path,
                               const AnswerLogHeader& header,
                               AnswerLogWriter* out) {
  out->path_ = path;
  out->out_.open(path, std::ios::out | std::ios::trunc);
  if (!out->out_) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out->out_ << HeaderLine(header) << '\n';
  out->out_.flush();
  if (!out->out_) return Status::IoError("write failed on " + path);
  return Status::Ok();
}

Status AnswerLogWriter::AppendRow(const std::string& task,
                                  const std::string& worker,
                                  const std::string& answer) {
  if (!out_.is_open()) {
    return Status::InvalidArgument("answer log writer is not open");
  }
  out_ << util::FormatCsvLine({task, worker, answer}) << '\n';
  out_.flush();
  if (!out_) return Status::IoError("write failed on " + path_);
  return Status::Ok();
}

Status AnswerLogWriter::Append(const std::string& task,
                               const std::string& worker, LabelId label) {
  return AppendRow(task, worker, std::to_string(label));
}

Status AnswerLogWriter::Append(const std::string& task,
                               const std::string& worker, double value) {
  return AppendRow(task, worker, util::JsonNumber(value));
}

Status AnswerLogReader::Open(const std::string& path) {
  path_ = path;
  line_ = 1;
  in_.open(path);
  if (!in_) return Status::NotFound("cannot open " + path);
  std::string header_line;
  if (!std::getline(in_, header_line)) {
    return Status::ParseError(path + ": empty file (missing header)");
  }
  return ParseHeader(util::ParseCsvLine(header_line), path, &header_);
}

Status AnswerLogReader::Next(AnswerLogRecord* record, bool* eof) {
  *eof = false;
  std::string row;
  // Skip blank lines (a crashed writer may leave a trailing newline).
  do {
    if (!std::getline(in_, row)) {
      *eof = true;
      return Status::Ok();
    }
    ++line_;
  } while (row.empty());

  const std::vector<std::string> fields = util::ParseCsvLine(row);
  if (fields.size() != 3) {
    return Status::ParseError(path_ + ":" + std::to_string(line_) +
                              ": expected 3 fields, got " +
                              std::to_string(fields.size()));
  }
  record->task = fields[0];
  record->worker = fields[1];
  record->answer = fields[2];
  char* end = nullptr;
  if (header_.type == AnswerLogType::kCategorical) {
    const long label = std::strtol(fields[2].c_str(), &end, 10);
    if (end == fields[2].c_str() || *end != '\0' || label < 0) {
      return Status::ParseError(path_ + ":" + std::to_string(line_) +
                                ": bad label \"" + fields[2] + "\"");
    }
    record->label = static_cast<LabelId>(label);
  } else {
    record->value = std::strtod(fields[2].c_str(), &end);
    if (end == fields[2].c_str() || *end != '\0') {
      return Status::ParseError(path_ + ":" + std::to_string(line_) +
                                ": bad value \"" + fields[2] + "\"");
    }
  }
  return Status::Ok();
}

Status WriteAnswerLog(const CategoricalDataset& dataset,
                      const std::string& path) {
  AnswerLogHeader header;
  header.type = AnswerLogType::kCategorical;
  header.num_choices = dataset.num_choices();
  AnswerLogWriter writer;
  Status status = AnswerLogWriter::Create(path, header, &writer);
  if (!status.ok()) return status;
  for (TaskId t = 0; t < dataset.num_tasks(); ++t) {
    for (const TaskVote& vote : dataset.AnswersForTask(t)) {
      status = writer.Append(std::to_string(t), std::to_string(vote.worker),
                             vote.label);
      if (!status.ok()) return status;
    }
  }
  return Status::Ok();
}

Status WriteAnswerLog(const NumericDataset& dataset,
                      const std::string& path) {
  AnswerLogHeader header;
  header.type = AnswerLogType::kNumeric;
  AnswerLogWriter writer;
  Status status = AnswerLogWriter::Create(path, header, &writer);
  if (!status.ok()) return status;
  for (TaskId t = 0; t < dataset.num_tasks(); ++t) {
    for (const NumericTaskVote& vote : dataset.AnswersForTask(t)) {
      status = writer.Append(std::to_string(t), std::to_string(vote.worker),
                             vote.value);
      if (!status.ok()) return status;
    }
  }
  return Status::Ok();
}

Status LoadCategoricalLog(const std::string& path,
                          const std::string& truth_path, int num_choices,
                          CategoricalDataset* out) {
  AnswerLogReader reader;
  Status status = reader.Open(path);
  if (!status.ok()) return status;
  if (reader.header().type != AnswerLogType::kCategorical) {
    return Status::InvalidArgument(path + ": not a categorical log");
  }

  IdInterner tasks;
  IdInterner workers;
  struct Raw {
    int task;
    int worker;
    LabelId label;
  };
  std::vector<Raw> raw;
  int max_label = 1;
  AnswerLogRecord record;
  bool eof = false;
  while (true) {
    status = reader.Next(&record, &eof);
    if (!status.ok()) return status;
    if (eof) break;
    max_label = std::max(max_label, record.label);
    raw.push_back(
        {tasks.Intern(record.task), workers.Intern(record.worker),
         record.label});
  }

  struct RawTruth {
    int task;
    LabelId label;
  };
  std::vector<RawTruth> raw_truth;
  if (!truth_path.empty()) {
    std::vector<std::pair<std::string, std::string>> rows;
    status = ReadTruthRows(truth_path, &rows);
    if (!status.ok()) return status;
    for (const auto& [task, truth] : rows) {
      char* end = nullptr;
      const long label = std::strtol(truth.c_str(), &end, 10);
      if (end == truth.c_str() || *end != '\0' || label < 0) {
        return Status::ParseError(truth_path + ": bad truth \"" + truth +
                                  "\"");
      }
      max_label = std::max(max_label, static_cast<int>(label));
      raw_truth.push_back({tasks.Intern(task), static_cast<LabelId>(label)});
    }
  }

  int choices = num_choices > 0 ? num_choices : reader.header().num_choices;
  if (choices <= 0) choices = std::max(2, max_label + 1);
  if (max_label >= choices) {
    return Status::InvalidArgument(
        path + ": label " + std::to_string(max_label) +
        " out of range for num_choices=" + std::to_string(choices));
  }

  CategoricalDatasetBuilder builder(tasks.size(), workers.size(), choices);
  builder.set_name(path);
  for (const Raw& r : raw) builder.AddAnswer(r.task, r.worker, r.label);
  for (const RawTruth& r : raw_truth) builder.SetTruth(r.task, r.label);
  *out = std::move(builder).Build();
  return Status::Ok();
}

Status LoadNumericLog(const std::string& path, const std::string& truth_path,
                      NumericDataset* out) {
  AnswerLogReader reader;
  Status status = reader.Open(path);
  if (!status.ok()) return status;
  if (reader.header().type != AnswerLogType::kNumeric) {
    return Status::InvalidArgument(path + ": not a numeric log");
  }

  IdInterner tasks;
  IdInterner workers;
  struct Raw {
    int task;
    int worker;
    double value;
  };
  std::vector<Raw> raw;
  AnswerLogRecord record;
  bool eof = false;
  while (true) {
    status = reader.Next(&record, &eof);
    if (!status.ok()) return status;
    if (eof) break;
    raw.push_back(
        {tasks.Intern(record.task), workers.Intern(record.worker),
         record.value});
  }

  struct RawTruth {
    int task;
    double value;
  };
  std::vector<RawTruth> raw_truth;
  if (!truth_path.empty()) {
    std::vector<std::pair<std::string, std::string>> rows;
    status = ReadTruthRows(truth_path, &rows);
    if (!status.ok()) return status;
    for (const auto& [task, truth] : rows) {
      char* end = nullptr;
      const double value = std::strtod(truth.c_str(), &end);
      if (end == truth.c_str() || *end != '\0') {
        return Status::ParseError(truth_path + ": bad truth \"" + truth +
                                  "\"");
      }
      raw_truth.push_back({tasks.Intern(task), value});
    }
  }

  NumericDatasetBuilder builder(tasks.size(), workers.size());
  builder.set_name(path);
  for (const Raw& r : raw) builder.AddAnswer(r.task, r.worker, r.value);
  for (const RawTruth& r : raw_truth) builder.SetTruth(r.task, r.value);
  *out = std::move(builder).Build();
  return Status::Ok();
}

}  // namespace crowdtruth::data
