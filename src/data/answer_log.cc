#include "data/answer_log.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "scenario/buggify.h"
#include "util/csv.h"
#include "util/json_writer.h"

namespace crowdtruth::data {
namespace {

using util::Status;

constexpr char kMagic[] = "crowdtruth_log";
constexpr char kVersion[] = "v1";

std::string HeaderLine(const AnswerLogHeader& header) {
  std::vector<std::string> fields = {kMagic, kVersion};
  if (header.type == AnswerLogType::kCategorical) {
    fields.push_back("categorical");
    fields.push_back(std::to_string(header.num_choices));
  } else {
    fields.push_back("numeric");
  }
  return util::FormatCsvLine(fields);
}

Status ParseHeader(const std::vector<std::string>& fields,
                   const std::string& path, AnswerLogHeader* header) {
  if (fields.size() < 3 || fields[0] != kMagic) {
    return Status::ParseError(path + ": not an answer log (expected \"" +
                              kMagic + ",...\" header)");
  }
  if (fields[1] != kVersion) {
    return Status::ParseError(path + ": unsupported log version \"" +
                              fields[1] + "\"");
  }
  if (fields[2] == "categorical") {
    header->type = AnswerLogType::kCategorical;
    header->num_choices = 0;
    if (fields.size() > 3) {
      char* end = nullptr;
      const long choices = std::strtol(fields[3].c_str(), &end, 10);
      if (end == fields[3].c_str() || *end != '\0' || choices < 0 ||
          choices > kMaxLabelSpace) {
        return Status::ParseError(path + ": bad num_choices \"" + fields[3] +
                                  "\"");
      }
      header->num_choices = static_cast<int>(choices);
    }
    return Status::Ok();
  }
  if (fields[2] == "numeric") {
    header->type = AnswerLogType::kNumeric;
    header->num_choices = 0;
    return Status::Ok();
  }
  return Status::ParseError(path + ": unknown log type \"" + fields[2] +
                            "\"");
}

// Interns arbitrary string ids into dense [0, n) integers in
// first-appearance order.
class IdInterner {
 public:
  int Intern(const std::string& id) {
    auto [it, inserted] = ids_.emplace(id, static_cast<int>(ids_.size()));
    (void)inserted;
    return it->second;
  }
  int size() const { return static_cast<int>(ids_.size()); }

 private:
  std::map<std::string, int> ids_;
};

Status ReadTruthRows(const std::string& truth_path,
                     std::vector<std::pair<std::string, std::string>>* rows) {
  std::vector<std::vector<std::string>> raw;
  Status status = util::ReadCsvFile(truth_path, &raw);
  if (!status.ok()) return status;
  if (raw.empty() || raw[0] != std::vector<std::string>{"task", "truth"}) {
    return Status::ParseError(truth_path +
                              ": expected header \"task,truth\"");
  }
  for (size_t i = 1; i < raw.size(); ++i) {
    if (raw[i].size() != 2) {
      return Status::ParseError(truth_path + ": row has " +
                                std::to_string(raw[i].size()) + " fields");
    }
    rows->emplace_back(raw[i][0], raw[i][1]);
  }
  return Status::Ok();
}

}  // namespace

int ShardOfTask(const std::string& task, int shard_count) {
  if (shard_count <= 1) return 0;
  // FNV-1a, 64-bit: stable across platforms and builds (the assignment is
  // part of the on-disk contract between shards).
  uint64_t hash = 1469598103934665603ull;
  for (const char c : task) {
    hash ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ull;
  }
  return static_cast<int>(hash % static_cast<uint64_t>(shard_count));
}

Status AnswerLogWriter::Create(const std::string& path,
                               const AnswerLogHeader& header,
                               AnswerLogWriter* out) {
  out->path_ = path;
  out->out_.open(path, std::ios::out | std::ios::trunc);
  if (!out->out_) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out->out_ << HeaderLine(header) << '\n';
  out->out_.flush();
  if (!out->out_) return Status::IoError("write failed on " + path);
  return Status::Ok();
}

Status AnswerLogWriter::AppendRow(const std::string& task,
                                  const std::string& worker,
                                  const std::string& answer) {
  if (!out_.is_open()) {
    return Status::InvalidArgument("answer log writer is not open");
  }
  out_ << util::FormatCsvLine({task, worker, answer}) << '\n';
  out_.flush();
  if (!out_) return Status::IoError("write failed on " + path_);
  return Status::Ok();
}

Status AnswerLogWriter::Append(const std::string& task,
                               const std::string& worker, LabelId label) {
  return AppendRow(task, worker, std::to_string(label));
}

Status AnswerLogWriter::Append(const std::string& task,
                               const std::string& worker, double value) {
  return AppendRow(task, worker, util::JsonNumber(value));
}

Status AnswerLogReader::Open(const std::string& path) {
  path_ = path;
  line_ = 1;
  sequence_ = 0;
  in_.open(path);
  if (!in_) return Status::NotFound("cannot open " + path);
  std::string header_line;
  if (!std::getline(in_, header_line)) {
    return Status::ParseError(path + ": empty file (missing header)");
  }
  util::StripUtf8Bom(&header_line);
  return ParseHeader(util::ParseCsvLine(header_line), path, &header_);
}

Status AnswerLogReader::SetShardSlice(int shard_index, int shard_count) {
  if (shard_count < 1 || shard_index < 0 || shard_index >= shard_count) {
    return Status::InvalidArgument(
        "bad shard slice " + std::to_string(shard_index) + "/" +
        std::to_string(shard_count));
  }
  shard_index_ = shard_index;
  shard_count_ = shard_count;
  return Status::Ok();
}

Status AnswerLogReader::Next(AnswerLogRecord* record, bool* eof) {
  *eof = false;
  // Buggify "answer_log_read": simulate a torn read by dropping the open
  // stream, then recover the way a real tailer would — reopen the file and
  // seek back to the saved offset. The next record yielded is identical,
  // so no downstream state ever sees the fault.
  if (CROWDTRUTH_BUGGIFY("answer_log_read") && in_.is_open()) {
    const std::streampos offset = in_.tellg();
    if (offset != std::streampos(-1)) {
      in_.close();
      in_.clear();
      in_.open(path_);
      if (!in_) return Status::IoError("cannot reopen " + path_);
      in_.seekg(offset);
      if (!in_) return Status::IoError("cannot seek in " + path_);
    }
  }
  while (true) {
    std::string row;
    // Skip blank lines (a crashed writer may leave a trailing newline).
    do {
      if (!std::getline(in_, row)) {
        *eof = true;
        return Status::Ok();
      }
      ++line_;
    } while (row.empty());

    const std::vector<std::string> fields = util::ParseCsvLine(row);
    if (fields.size() != 3) {
      return Status::ParseError(path_ + ":" + std::to_string(line_) +
                                ": expected 3 fields, got " +
                                std::to_string(fields.size()));
    }
    record->task = fields[0];
    record->worker = fields[1];
    record->answer = fields[2];
    char* end = nullptr;
    if (header_.type == AnswerLogType::kCategorical) {
      errno = 0;
      const long label = std::strtol(fields[2].c_str(), &end, 10);
      if (end == fields[2].c_str() || *end != '\0' || label < 0 ||
          errno == ERANGE || label > std::numeric_limits<int>::max()) {
        return Status::ParseError(path_ + ":" + std::to_string(line_) +
                                  ": bad label \"" + fields[2] + "\"");
      }
      record->label = static_cast<LabelId>(label);
    } else {
      record->value = std::strtod(fields[2].c_str(), &end);
      if (end == fields[2].c_str() || *end != '\0') {
        return Status::ParseError(path_ + ":" + std::to_string(line_) +
                                  ": bad value \"" + fields[2] + "\"");
      }
      // "nan"/"inf" parse cleanly through strtod but poison every weighted
      // mean downstream; a log record carrying one is malformed.
      if (!std::isfinite(record->value)) {
        return Status::ParseError(path_ + ":" + std::to_string(line_) +
                                  ": non-finite value \"" + fields[2] +
                                  "\"");
      }
    }
    // Every well-formed row consumes a global sequence number, whether or
    // not this slice yields it — shards agree on record positions.
    record->sequence = sequence_++;
    if (shard_count_ <= 1 ||
        ShardOfTask(record->task, shard_count_) == shard_index_) {
      return Status::Ok();
    }
  }
}

Status WriteAnswerLog(const CategoricalDataset& dataset,
                      const std::string& path) {
  AnswerLogHeader header;
  header.type = AnswerLogType::kCategorical;
  header.num_choices = dataset.num_choices();
  AnswerLogWriter writer;
  Status status = AnswerLogWriter::Create(path, header, &writer);
  if (!status.ok()) return status;
  for (TaskId t = 0; t < dataset.num_tasks(); ++t) {
    for (const TaskVote& vote : dataset.AnswersForTask(t)) {
      status = writer.Append(std::to_string(t), std::to_string(vote.worker),
                             vote.label);
      if (!status.ok()) return status;
    }
  }
  return Status::Ok();
}

Status WriteAnswerLog(const NumericDataset& dataset,
                      const std::string& path) {
  AnswerLogHeader header;
  header.type = AnswerLogType::kNumeric;
  AnswerLogWriter writer;
  Status status = AnswerLogWriter::Create(path, header, &writer);
  if (!status.ok()) return status;
  for (TaskId t = 0; t < dataset.num_tasks(); ++t) {
    for (const NumericTaskVote& vote : dataset.AnswersForTask(t)) {
      status = writer.Append(std::to_string(t), std::to_string(vote.worker),
                             vote.value);
      if (!status.ok()) return status;
    }
  }
  return Status::Ok();
}

Status LoadCategoricalLog(const std::string& path,
                          const std::string& truth_path, int num_choices,
                          const ValidationOptions& validation,
                          CategoricalDataset* out,
                          ValidationReport* report) {
  if (num_choices > kMaxLabelSpace) {
    return Status::InvalidArgument(
        "num_choices " + std::to_string(num_choices) +
        " exceeds the label-space cap " + std::to_string(kMaxLabelSpace));
  }
  AnswerLogReader reader;
  Status status = reader.Open(path);
  if (!status.ok()) return status;
  if (reader.header().type != AnswerLogType::kCategorical) {
    return Status::InvalidArgument(path + ": not a categorical log");
  }

  IdInterner tasks;
  IdInterner workers;
  std::vector<RawCategoricalAnswer> raw;
  AnswerLogRecord record;
  bool eof = false;
  int64_t row = 1;
  while (true) {
    status = reader.Next(&record, &eof);
    if (!status.ok()) return status;
    if (eof) break;
    ++row;
    raw.push_back({tasks.Intern(record.task), workers.Intern(record.worker),
                   record.label, row});
  }

  std::vector<RawCategoricalTruth> raw_truth;
  if (!truth_path.empty()) {
    std::vector<std::pair<std::string, std::string>> rows;
    status = ReadTruthRows(truth_path, &rows);
    if (!status.ok()) return status;
    int64_t truth_row = 1;
    for (const auto& [task, truth] : rows) {
      ++truth_row;
      char* end = nullptr;
      errno = 0;
      const long label = std::strtol(truth.c_str(), &end, 10);
      if (end == truth.c_str() || *end != '\0' || label < 0 ||
          errno == ERANGE || label > std::numeric_limits<int>::max()) {
        return Status::ParseError(truth_path + ": bad truth \"" + truth +
                                  "\"");
      }
      raw_truth.push_back(
          {tasks.Intern(task), static_cast<LabelId>(label), truth_row});
    }
  }

  // The label range check needs the final label space: explicit
  // num_choices, else the header value, else inferred after validation.
  const int declared =
      num_choices > 0 ? num_choices : reader.header().num_choices;

  ValidationReport local_report;
  ValidationReport* tally = report != nullptr ? report : &local_report;
  status = ValidateCategoricalRecords(path, declared, validation, &raw,
                                      tally);
  if (!status.ok()) return status;
  status = ValidateCategoricalTruth(truth_path, declared, validation,
                                    &raw_truth, tally);
  if (!status.ok()) return status;

  int max_label = 1;
  for (const RawCategoricalAnswer& r : raw) {
    max_label = std::max(max_label, r.label);
  }
  for (const RawCategoricalTruth& r : raw_truth) {
    max_label = std::max(max_label, r.label);
  }
  const int choices = declared > 0 ? declared : std::max(2, max_label + 1);

  CategoricalDatasetBuilder builder(tasks.size(), workers.size(), choices);
  builder.set_name(path);
  for (const RawCategoricalAnswer& r : raw) {
    builder.AddAnswer(r.task, r.worker, r.label);
  }
  for (const RawCategoricalTruth& r : raw_truth) {
    builder.SetTruth(r.task, r.label);
  }
  CategoricalDataset dataset;
  status = std::move(builder).TryBuild(&dataset);
  if (!status.ok()) return status;
  *out = std::move(dataset);
  return Status::Ok();
}

Status LoadNumericLog(const std::string& path, const std::string& truth_path,
                      const ValidationOptions& validation,
                      NumericDataset* out, ValidationReport* report) {
  AnswerLogReader reader;
  Status status = reader.Open(path);
  if (!status.ok()) return status;
  if (reader.header().type != AnswerLogType::kNumeric) {
    return Status::InvalidArgument(path + ": not a numeric log");
  }

  IdInterner tasks;
  IdInterner workers;
  std::vector<RawNumericAnswer> raw;
  AnswerLogRecord record;
  bool eof = false;
  int64_t row = 1;
  while (true) {
    status = reader.Next(&record, &eof);
    if (!status.ok()) return status;
    if (eof) break;
    ++row;
    raw.push_back({tasks.Intern(record.task), workers.Intern(record.worker),
                   record.value, row});
  }

  std::vector<RawNumericTruth> raw_truth;
  if (!truth_path.empty()) {
    std::vector<std::pair<std::string, std::string>> rows;
    status = ReadTruthRows(truth_path, &rows);
    if (!status.ok()) return status;
    int64_t truth_row = 1;
    for (const auto& [task, truth] : rows) {
      ++truth_row;
      char* end = nullptr;
      const double value = std::strtod(truth.c_str(), &end);
      if (end == truth.c_str() || *end != '\0') {
        return Status::ParseError(truth_path + ": bad truth \"" + truth +
                                  "\"");
      }
      raw_truth.push_back({tasks.Intern(task), value, truth_row});
    }
  }

  ValidationReport local_report;
  ValidationReport* tally = report != nullptr ? report : &local_report;
  status = ValidateNumericRecords(path, validation, &raw, tally);
  if (!status.ok()) return status;
  status = ValidateNumericTruth(truth_path, validation, &raw_truth, tally);
  if (!status.ok()) return status;

  NumericDatasetBuilder builder(tasks.size(), workers.size());
  builder.set_name(path);
  for (const RawNumericAnswer& r : raw) {
    builder.AddAnswer(r.task, r.worker, r.value);
  }
  for (const RawNumericTruth& r : raw_truth) {
    builder.SetTruth(r.task, r.value);
  }
  NumericDataset dataset;
  status = std::move(builder).TryBuild(&dataset);
  if (!status.ok()) return status;
  *out = std::move(dataset);
  return Status::Ok();
}

Status LoadCategoricalLog(const std::string& path,
                          const std::string& truth_path, int num_choices,
                          CategoricalDataset* out) {
  return LoadCategoricalLog(path, truth_path, num_choices,
                            ValidationOptions(), out, /*report=*/nullptr);
}

Status LoadNumericLog(const std::string& path, const std::string& truth_path,
                      NumericDataset* out) {
  return LoadNumericLog(path, truth_path, ValidationOptions(), out,
                        /*report=*/nullptr);
}

}  // namespace crowdtruth::data
