#include "data/validate.h"

#include <cmath>
#include <cstdint>

#include "obs/metrics.h"
#include <unordered_map>
#include <utility>

namespace crowdtruth::data {
namespace {

using util::Status;

// Key for (task, worker) duplicate detection. Task/worker ids are dense
// interned ints, so a single 64-bit key is collision-free.
uint64_t PairKey(int task, int worker) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(task)) << 32) |
         static_cast<uint32_t>(worker);
}

void AddExample(const ValidationOptions& options, ValidationReport* report,
                std::string message) {
  if (static_cast<int>(report->examples.size()) < options.max_examples) {
    report->examples.push_back(std::move(message));
  }
}

std::string RowPrefix(const std::string& source, int64_t row) {
  return source + (row > 0 ? ":" + std::to_string(row) : "") + ": ";
}

void AppendCount(int64_t count, const char* what, std::string* out) {
  if (count == 0) return;
  if (!out->empty()) *out += ", ";
  *out += std::to_string(count) + " " + what;
  if (count != 1) *out += "s";
}

// Shared duplicate/dedupe sweep over answer records. `keep` receives the
// indices that survive, in input order.
template <typename Record>
Status SweepDuplicates(const std::string& source,
                       const ValidationOptions& options,
                       std::vector<Record>* records,
                       ValidationReport* report) {
  std::unordered_map<uint64_t, size_t> first_seen;
  first_seen.reserve(records->size());
  std::vector<bool> drop(records->size(), false);
  for (size_t i = 0; i < records->size(); ++i) {
    const Record& r = (*records)[i];
    auto [it, inserted] = first_seen.emplace(PairKey(r.task, r.worker), i);
    if (inserted) continue;
    ++report->duplicate_answers;
    AddExample(options, report,
               RowPrefix(source, r.row) + "duplicate answer (task " +
                   std::to_string(r.task) + ", worker " +
                   std::to_string(r.worker) + ")");
    switch (options.policy) {
      case BadRecordPolicy::kReject:
        return Status::ValidationError(
            RowPrefix(source, r.row) + "duplicate answer: worker " +
            std::to_string(r.worker) + " already answered task " +
            std::to_string(r.task));
      case BadRecordPolicy::kDedupeKeepLast:
        // The later record supersedes: overwrite the survivor in place so
        // the kept row keeps its original position.
        (*records)[it->second] = r;
        drop[i] = true;
        break;
      case BadRecordPolicy::kDropRow:
        drop[i] = true;
        break;
    }
  }
  size_t kept = 0;
  for (size_t i = 0; i < records->size(); ++i) {
    if (!drop[i]) (*records)[kept++] = (*records)[i];
  }
  records->resize(kept);
  return Status::Ok();
}

// Drops (or rejects on) records failing `bad`, counting into `counter`.
template <typename Record, typename BadFn, typename DescribeFn>
Status SweepBadRows(const std::string& source,
                    const ValidationOptions& options,
                    std::vector<Record>* records, ValidationReport* report,
                    int64_t* counter, BadFn bad, DescribeFn describe) {
  size_t kept = 0;
  for (size_t i = 0; i < records->size(); ++i) {
    const Record& r = (*records)[i];
    if (bad(r)) {
      ++*counter;
      AddExample(options, report, RowPrefix(source, r.row) + describe(r));
      if (options.policy == BadRecordPolicy::kReject) {
        return Status::ValidationError(RowPrefix(source, r.row) +
                                       describe(r));
      }
      continue;
    }
    (*records)[kept++] = r;
  }
  records->resize(kept);
  return Status::Ok();
}

// Truth rows: same-task duplicates. Agreeing duplicates collapse silently;
// conflicting ones follow the policy (keep-last under kDedupeKeepLast,
// keep-first under kDropRow, error under kReject).
template <typename Row, typename SameFn>
Status SweepTruthDuplicates(const std::string& source,
                            const ValidationOptions& options,
                            std::vector<Row>* rows, ValidationReport* report,
                            SameFn same_value) {
  std::unordered_map<int, size_t> first_seen;
  first_seen.reserve(rows->size());
  std::vector<bool> drop(rows->size(), false);
  for (size_t i = 0; i < rows->size(); ++i) {
    const Row& r = (*rows)[i];
    auto [it, inserted] = first_seen.emplace(r.task, i);
    if (inserted) continue;
    drop[i] = true;
    if (same_value((*rows)[it->second], r)) continue;
    ++report->duplicate_truth;
    AddExample(options, report,
               RowPrefix(source, r.row) + "conflicting truth for task " +
                   std::to_string(r.task));
    switch (options.policy) {
      case BadRecordPolicy::kReject:
        return Status::ValidationError(RowPrefix(source, r.row) +
                                       "conflicting truth for task " +
                                       std::to_string(r.task));
      case BadRecordPolicy::kDedupeKeepLast:
        (*rows)[it->second] = r;
        break;
      case BadRecordPolicy::kDropRow:
        break;
    }
  }
  size_t kept = 0;
  for (size_t i = 0; i < rows->size(); ++i) {
    if (!drop[i]) (*rows)[kept++] = (*rows)[i];
  }
  rows->resize(kept);
  return Status::Ok();
}

// Commits the report delta a validator call produced to the process-wide
// registry. Scoped so early returns (kReject) still publish whatever the
// sweep counted before failing.
void RecordValidationMetrics(BadRecordPolicy policy,
                             const ValidationReport& before,
                             const ValidationReport& after) {
  obs::MetricRegistry* const metrics = obs::ProcessMetrics();
  if (metrics == nullptr) return;
  const int64_t seen = after.answers_seen - before.answers_seen;
  if (seen > 0) {
    metrics
        ->AddCounter(
            "crowdtruth_validation_records_seen_total",
            "Records routed through the record-level validators.")
        .Increment(seen);
  }
  const int64_t dropped = after.rows_dropped() - before.rows_dropped();
  if (dropped > 0) {
    metrics
        ->AddCounterFamily(
            "crowdtruth_validation_rows_dropped_total",
            "Rows removed or collapsed by a repair policy.", {"policy"})
        .WithLabels({BadRecordPolicyName(policy)})
        .Increment(dropped);
  }
  const auto bump_kind = [metrics](const char* kind, int64_t delta) {
    if (delta <= 0) return;
    metrics
        ->AddCounterFamily("crowdtruth_validation_findings_total",
                           "Record-level validation findings by kind.",
                           {"kind"})
        .WithLabels({kind})
        .Increment(delta);
  };
  bump_kind("duplicate_answer",
            after.duplicate_answers - before.duplicate_answers);
  bump_kind("out_of_range_label",
            after.out_of_range_labels - before.out_of_range_labels);
  bump_kind("non_finite_value",
            after.non_finite_values - before.non_finite_values);
  bump_kind("duplicate_truth", after.duplicate_truth - before.duplicate_truth);
  bump_kind("out_of_range_truth",
            after.out_of_range_truth - before.out_of_range_truth);
  bump_kind("non_finite_truth",
            after.non_finite_truth - before.non_finite_truth);
}

// One per validator call: snapshots the report on entry, publishes the
// delta on every exit path.
class ValidationMetricsScope {
 public:
  ValidationMetricsScope(BadRecordPolicy policy, ValidationReport* report)
      : policy_(policy), report_(report), before_(*report) {}
  ~ValidationMetricsScope() {
    RecordValidationMetrics(policy_, before_, *report_);
  }
  ValidationMetricsScope(const ValidationMetricsScope&) = delete;
  ValidationMetricsScope& operator=(const ValidationMetricsScope&) = delete;

 private:
  BadRecordPolicy policy_;
  ValidationReport* report_;
  ValidationReport before_;
};

}  // namespace

Status ParseBadRecordPolicy(const std::string& name, BadRecordPolicy* out) {
  if (name == "reject") {
    *out = BadRecordPolicy::kReject;
  } else if (name == "dedupe" || name == "dedupe-keep-last") {
    *out = BadRecordPolicy::kDedupeKeepLast;
  } else if (name == "drop" || name == "drop-row") {
    *out = BadRecordPolicy::kDropRow;
  } else {
    return Status::InvalidArgument(
        "unknown bad-record policy \"" + name +
        "\" (expected reject, dedupe, or drop)");
  }
  return Status::Ok();
}

std::string BadRecordPolicyName(BadRecordPolicy policy) {
  switch (policy) {
    case BadRecordPolicy::kReject: return "reject";
    case BadRecordPolicy::kDedupeKeepLast: return "dedupe-keep-last";
    case BadRecordPolicy::kDropRow: return "drop-row";
  }
  return "unknown";
}

std::string ValidationReport::Summary() const {
  std::string findings;
  AppendCount(duplicate_answers, "duplicate answer", &findings);
  AppendCount(out_of_range_labels, "out-of-range label", &findings);
  AppendCount(non_finite_values, "non-finite value", &findings);
  AppendCount(duplicate_truth, "conflicting truth row", &findings);
  AppendCount(out_of_range_truth, "out-of-range truth label", &findings);
  AppendCount(non_finite_truth, "non-finite truth value", &findings);
  AppendCount(empty_tasks, "empty task", &findings);
  AppendCount(idle_workers, "idle worker", &findings);
  AppendCount(truth_only_tasks, "truth-only task", &findings);
  if (findings.empty()) findings = "no findings";
  std::string summary = std::to_string(answers_seen) + " answers seen, " +
                        std::to_string(answers_kept) + " kept; " + findings;
  return summary;
}

void ValidationReport::Merge(const ValidationReport& other) {
  answers_seen += other.answers_seen;
  answers_kept += other.answers_kept;
  duplicate_answers += other.duplicate_answers;
  out_of_range_labels += other.out_of_range_labels;
  non_finite_values += other.non_finite_values;
  duplicate_truth += other.duplicate_truth;
  out_of_range_truth += other.out_of_range_truth;
  non_finite_truth += other.non_finite_truth;
  empty_tasks += other.empty_tasks;
  idle_workers += other.idle_workers;
  truth_only_tasks += other.truth_only_tasks;
  for (const std::string& example : other.examples) {
    examples.push_back(example);
  }
}

Status ValidateCategoricalRecords(
    const std::string& source, int num_choices,
    const ValidationOptions& options,
    std::vector<RawCategoricalAnswer>* records, ValidationReport* report) {
  ValidationMetricsScope metrics_scope(options.policy, report);
  report->answers_seen += static_cast<int64_t>(records->size());
  // Inferred label spaces are capped at kMaxLabelSpace (see validate.h).
  const int bound = num_choices > 0 ? num_choices : kMaxLabelSpace;
  Status status = SweepBadRows(
      source, options, records, report, &report->out_of_range_labels,
      [bound](const RawCategoricalAnswer& r) {
        return r.label < 0 || r.label >= bound;
      },
      [num_choices, bound](const RawCategoricalAnswer& r) {
        return "label " + std::to_string(r.label) + " out of range" +
               (num_choices > 0
                    ? " for num_choices=" + std::to_string(num_choices)
                    : " (label-space cap " + std::to_string(bound) + ")");
      });
  if (!status.ok()) return status;
  status = SweepDuplicates(source, options, records, report);
  if (!status.ok()) return status;
  report->answers_kept += static_cast<int64_t>(records->size());
  return Status::Ok();
}

Status ValidateNumericRecords(const std::string& source,
                              const ValidationOptions& options,
                              std::vector<RawNumericAnswer>* records,
                              ValidationReport* report) {
  ValidationMetricsScope metrics_scope(options.policy, report);
  report->answers_seen += static_cast<int64_t>(records->size());
  Status status = SweepBadRows(
      source, options, records, report, &report->non_finite_values,
      [](const RawNumericAnswer& r) { return !std::isfinite(r.value); },
      [](const RawNumericAnswer&) {
        return std::string("non-finite answer value");
      });
  if (!status.ok()) return status;
  status = SweepDuplicates(source, options, records, report);
  if (!status.ok()) return status;
  report->answers_kept += static_cast<int64_t>(records->size());
  return Status::Ok();
}

Status ValidateCategoricalTruth(const std::string& source, int num_choices,
                                const ValidationOptions& options,
                                std::vector<RawCategoricalTruth>* rows,
                                ValidationReport* report) {
  ValidationMetricsScope metrics_scope(options.policy, report);
  const int bound = num_choices > 0 ? num_choices : kMaxLabelSpace;
  Status status = SweepBadRows(
      source, options, rows, report, &report->out_of_range_truth,
      [bound](const RawCategoricalTruth& r) {
        return r.label < 0 || r.label >= bound;
      },
      [num_choices, bound](const RawCategoricalTruth& r) {
        return "truth label " + std::to_string(r.label) + " out of range" +
               (num_choices > 0
                    ? " for num_choices=" + std::to_string(num_choices)
                    : " (label-space cap " + std::to_string(bound) + ")");
      });
  if (!status.ok()) return status;
  return SweepTruthDuplicates(
      source, options, rows, report,
      [](const RawCategoricalTruth& a, const RawCategoricalTruth& b) {
        return a.label == b.label;
      });
}

Status ValidateNumericTruth(const std::string& source,
                            const ValidationOptions& options,
                            std::vector<RawNumericTruth>* rows,
                            ValidationReport* report) {
  ValidationMetricsScope metrics_scope(options.policy, report);
  Status status = SweepBadRows(
      source, options, rows, report, &report->non_finite_truth,
      [](const RawNumericTruth& r) { return !std::isfinite(r.value); },
      [](const RawNumericTruth&) {
        return std::string("non-finite truth value");
      });
  if (!status.ok()) return status;
  return SweepTruthDuplicates(
      source, options, rows, report,
      [](const RawNumericTruth& a, const RawNumericTruth& b) {
        return a.value == b.value;
      });
}

ValidationReport ValidateDataset(const CategoricalDataset& dataset) {
  ValidationReport report;
  report.answers_seen = dataset.num_answers();
  report.answers_kept = dataset.num_answers();
  for (TaskId t = 0; t < dataset.num_tasks(); ++t) {
    if (dataset.AnswersForTask(t).empty()) {
      ++report.empty_tasks;
      if (dataset.HasTruth(t)) ++report.truth_only_tasks;
    }
  }
  for (WorkerId w = 0; w < dataset.num_workers(); ++w) {
    if (dataset.AnswersByWorker(w).empty()) ++report.idle_workers;
  }
  return report;
}

ValidationReport ValidateDataset(const NumericDataset& dataset) {
  ValidationReport report;
  report.answers_seen = dataset.num_answers();
  report.answers_kept = dataset.num_answers();
  for (TaskId t = 0; t < dataset.num_tasks(); ++t) {
    if (dataset.AnswersForTask(t).empty()) {
      ++report.empty_tasks;
      if (dataset.HasTruth(t)) ++report.truth_only_tasks;
    }
  }
  for (WorkerId w = 0; w < dataset.num_workers(); ++w) {
    if (dataset.AnswersByWorker(w).empty()) ++report.idle_workers;
  }
  return report;
}

}  // namespace crowdtruth::data
