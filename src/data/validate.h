// Validation subsystem for the untrusted-input path.
//
// Real crowdsourcing dumps are messy: duplicate (task, worker) pairs,
// out-of-range labels, NaN/Inf numeric answers, truth rows for tasks nobody
// answered, conflicting truth rows. The loaders (data/io.h,
// data/answer_log.h) route every file-derived record through the
// record-level validators below before building a dataset, so malformed
// input surfaces as a recoverable util::Status — never a CHECK abort and
// never a silent NaN inside the inference kernels.
//
// Two layers:
//   * Record validation (ValidateCategoricalRecords, ...) — mutates a raw
//     record list according to a BadRecordPolicy and accumulates a
//     ValidationReport. kReject turns the first finding into a
//     ValidationError Status; the repair policies drop or dedupe offending
//     rows and keep going.
//   * Dataset diagnostics (ValidateDataset) — non-mutating structural scan
//     of a built dataset (empty tasks, idle workers, truth coverage);
//     informational, never an error.
#ifndef CROWDTRUTH_DATA_VALIDATE_H_
#define CROWDTRUTH_DATA_VALIDATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace crowdtruth::data {

// What to do with a record the validator flags.
//   kReject        — fail the whole load with a ValidationError Status.
//   kDedupeKeepLast— duplicates collapse to the last occurrence (later
//                    answers supersede earlier ones, matching an
//                    append-only collection log); other bad rows drop.
//   kDropRow       — duplicates collapse to the first occurrence; other
//                    bad rows drop.
enum class BadRecordPolicy { kReject, kDedupeKeepLast, kDropRow };

// Parses "reject" / "dedupe" / "dedupe-keep-last" / "drop" / "drop-row".
util::Status ParseBadRecordPolicy(const std::string& name,
                                  BadRecordPolicy* out);
std::string BadRecordPolicyName(BadRecordPolicy policy);

// Largest label space the validators accept when `num_choices` is inferred
// from the data. Several methods keep per-worker l x l confusion matrices,
// so a single corrupt row carrying label 10^6 would otherwise make the
// loader build a dataset whose inference needs terabytes. Real single-choice
// label spaces are tiny (the paper's datasets top out at l = 8).
inline constexpr int kMaxLabelSpace = 1024;

struct ValidationOptions {
  BadRecordPolicy policy = BadRecordPolicy::kReject;
  // Example messages retained in ValidationReport::examples; further
  // findings only bump the counters.
  int max_examples = 8;
};

// Structured tally of everything the validators found. `rows_dropped()`
// tells a caller how much repair happened; the per-kind counters say why.
struct ValidationReport {
  // Record-level findings (mutating validators).
  int64_t answers_seen = 0;
  int64_t answers_kept = 0;
  int64_t duplicate_answers = 0;
  int64_t out_of_range_labels = 0;
  int64_t non_finite_values = 0;
  int64_t duplicate_truth = 0;
  int64_t out_of_range_truth = 0;
  int64_t non_finite_truth = 0;

  // Structural diagnostics (ValidateDataset).
  int64_t empty_tasks = 0;       // tasks with zero answers
  int64_t idle_workers = 0;      // workers with zero answers
  int64_t truth_only_tasks = 0;  // labeled tasks nobody answered

  // First max_examples human-readable findings, in input order.
  std::vector<std::string> examples;

  // Total records the repair policies removed or collapsed.
  int64_t rows_dropped() const {
    return answers_seen - answers_kept;
  }
  // True when any record-level finding fired.
  bool clean() const {
    return duplicate_answers == 0 && out_of_range_labels == 0 &&
           non_finite_values == 0 && duplicate_truth == 0 &&
           out_of_range_truth == 0 && non_finite_truth == 0;
  }
  // One-line summary
  // ("5 answers seen, 3 kept; 1 duplicate answer, 1 out-of-range label").
  std::string Summary() const;

  void Merge(const ValidationReport& other);
};

// Raw records as the loaders see them after id interning, before the
// dataset is built. `row` is the 1-based source line for error messages.
struct RawCategoricalAnswer {
  int task = 0;
  int worker = 0;
  LabelId label = 0;
  int64_t row = 0;
};
struct RawNumericAnswer {
  int task = 0;
  int worker = 0;
  double value = 0.0;
  int64_t row = 0;
};
struct RawCategoricalTruth {
  int task = 0;
  LabelId label = 0;
  int64_t row = 0;
};
struct RawNumericTruth {
  int task = 0;
  double value = 0.0;
  int64_t row = 0;
};

// Record-level validators. Mutate `*records` in place according to
// `options.policy` and accumulate into `*report` (which is not reset, so
// one report can cover an answers file plus a truth file). `source` names
// the input in error messages. `num_choices` <= 0 disables the label range
// check (the caller infers the label space from the data afterwards).
util::Status ValidateCategoricalRecords(
    const std::string& source, int num_choices,
    const ValidationOptions& options,
    std::vector<RawCategoricalAnswer>* records, ValidationReport* report);

util::Status ValidateNumericRecords(const std::string& source,
                                    const ValidationOptions& options,
                                    std::vector<RawNumericAnswer>* records,
                                    ValidationReport* report);

// Truth-row validators: range/finiteness plus conflicting duplicates
// (two truth rows for one task). A duplicate pair that agrees is collapsed
// silently under every policy; a conflicting one follows the policy.
util::Status ValidateCategoricalTruth(const std::string& source,
                                      int num_choices,
                                      const ValidationOptions& options,
                                      std::vector<RawCategoricalTruth>* rows,
                                      ValidationReport* report);

util::Status ValidateNumericTruth(const std::string& source,
                                  const ValidationOptions& options,
                                  std::vector<RawNumericTruth>* rows,
                                  ValidationReport* report);

// Structural diagnostics over a built dataset: empty tasks, idle workers,
// labeled-but-unanswered tasks. Purely informational.
ValidationReport ValidateDataset(const CategoricalDataset& dataset);
ValidationReport ValidateDataset(const NumericDataset& dataset);

}  // namespace crowdtruth::data

#endif  // CROWDTRUTH_DATA_VALIDATE_H_
